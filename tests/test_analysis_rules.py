"""Fixture self-tests for every repro-lint rule.

Each rule gets at least one triggering snippet and one conforming snippet.
Snippets are linted in-memory under synthetic paths, which is how the
path-scoped rules (P-series only in ``repro/nn``, L-series only in
``repro/runtime``) are exercised without touching the real tree.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import RULES, lint_source

NN_PATH = "src/repro/nn/fixture.py"
RUNTIME_PATH = "src/repro/runtime/fixture.py"
CORE_PATH = "src/repro/core/fixture.py"


def rule_ids(source, relpath=CORE_PATH, select=None):
    result = lint_source(textwrap.dedent(source), relpath, select=select)
    return [finding.rule for finding in result.findings]


def assert_fires(rule, source, relpath=CORE_PATH):
    ids = rule_ids(source, relpath, select=[rule])
    assert ids == [rule] * len(ids) and ids, f"expected {rule} to fire, got {ids}"


def assert_quiet(rule, source, relpath=CORE_PATH):
    ids = rule_ids(source, relpath, select=[rule])
    assert ids == [], f"expected no {rule} findings, got {ids}"


# -- D-series: determinism ----------------------------------------------------


class TestD101NumpyGlobalRng:
    def test_fires_on_global_draw(self):
        assert_fires("D101", """
            import numpy as np
            x = np.random.rand(3)
        """)

    def test_fires_on_global_seed(self):
        assert_fires("D101", """
            import numpy as np
            np.random.seed(0)
        """)

    def test_quiet_on_generator(self):
        assert_quiet("D101", """
            import numpy as np
            rng = np.random.default_rng(0)
            x = rng.random(3)
        """)


class TestD102StdlibGlobalRng:
    def test_fires_on_module_shuffle(self):
        assert_fires("D102", """
            import random
            random.shuffle([1, 2, 3])
        """)

    def test_quiet_on_instance(self):
        assert_quiet("D102", """
            import random
            r = random.Random(7)
            r.shuffle([1, 2, 3])
        """)

    def test_quiet_when_random_is_numpy(self):
        # `from numpy import random` shadows the stdlib module
        assert_quiet("D102", """
            from numpy import random
            rng = random.default_rng(0)
        """)


class TestD103UnseededDefaultRng:
    def test_fires_argless(self):
        assert_fires("D103", """
            import numpy as np
            rng = np.random.default_rng()
        """)

    def test_fires_explicit_none(self):
        assert_fires("D103", """
            from numpy.random import default_rng
            rng = default_rng(None)
        """)

    def test_quiet_with_seed_expression(self):
        assert_quiet("D103", """
            import numpy as np
            def build(seed):
                return np.random.default_rng(seed)
        """)


class TestD104WallClock:
    def test_fires_outside_allowlist(self):
        assert_fires("D104", """
            import time
            stamp = time.time()
        """)

    def test_fires_on_datetime_now(self):
        assert_fires("D104", """
            from datetime import datetime
            when = datetime.now()
        """)

    def test_quiet_in_locks_module(self):
        assert_quiet(
            "D104",
            """
            import time
            age = time.time()
            """,
            relpath="src/repro/runtime/locks.py",
        )

    def test_quiet_for_perf_counter(self):
        assert_quiet("D104", """
            import time
            start = time.perf_counter()
        """)


class TestD105UnsortedFsIteration:
    def test_fires_on_listdir(self):
        assert_fires("D105", """
            import os
            for name in os.listdir("."):
                print(name)
        """)

    def test_fires_on_iterdir_method(self):
        assert_fires("D105", """
            def walk(root):
                return [p for p in root.iterdir()]
        """)

    def test_quiet_when_sorted(self):
        assert_quiet("D105", """
            import os
            for name in sorted(os.listdir(".")):
                print(name)
        """)

    def test_quiet_when_sorted_around_genexp(self):
        assert_quiet("D105", """
            def walk(root):
                return sorted(p for p in root.iterdir() if p.is_dir())
        """)


class TestD106SetIteration:
    def test_fires_on_set_literal_loop(self):
        assert_fires("D106", """
            for x in {"b", "a"}:
                print(x)
        """)

    def test_fires_on_set_call_comprehension(self):
        assert_fires("D106", """
            rows = [x for x in set([3, 1])]
        """)

    def test_quiet_when_sorted(self):
        assert_quiet("D106", """
            for x in sorted({"b", "a"}):
                print(x)
        """)

    def test_quiet_on_membership(self):
        assert_quiet("D106", """
            wanted = {"a", "b"}
            hit = "a" in wanted
        """)


# -- P-series: precision tiers ------------------------------------------------


class TestP101NumpyScalarConstant:
    def test_fires_on_constant_sqrt(self):
        assert_fires(
            "P101",
            """
            import numpy as np
            C = np.sqrt(2.0 / np.pi)
            """,
            relpath=NN_PATH,
        )

    def test_quiet_when_wrapped_in_float(self):
        assert_quiet(
            "P101",
            """
            import numpy as np
            C = float(np.sqrt(2.0 / np.pi))
            """,
            relpath=NN_PATH,
        )

    def test_quiet_outside_nn(self):
        assert_quiet("P101", """
            import numpy as np
            C = np.sqrt(2.0)
        """)

    def test_quiet_in_exempt_init_module(self):
        assert_quiet(
            "P101",
            """
            import numpy as np
            C = np.sqrt(2.0)
            """,
            relpath="src/repro/nn/init.py",
        )


class TestP102Float64ScalarCall:
    def test_fires(self):
        assert_fires(
            "P102",
            """
            import numpy as np
            def forward(x):
                return np.float64(0.5) * x
            """,
            relpath=NN_PATH,
        )

    def test_quiet_on_python_float(self):
        assert_quiet(
            "P102",
            """
            def forward(x):
                return 0.5 * x
            """,
            relpath=NN_PATH,
        )


class TestP103Float64ScratchAlloc:
    def test_fires(self):
        assert_fires(
            "P103",
            """
            import numpy as np
            def forward(x):
                return np.zeros(x.shape, dtype=np.float64)
            """,
            relpath=NN_PATH,
        )

    def test_quiet_when_following_input_dtype(self):
        assert_quiet(
            "P103",
            """
            import numpy as np
            def forward(x):
                return np.zeros(x.shape, dtype=x.dtype)
            """,
            relpath=NN_PATH,
        )


class TestP104AstypeFloat64:
    def test_fires(self):
        assert_fires(
            "P104",
            """
            import numpy as np
            def forward(x):
                return x.astype(np.float64)
            """,
            relpath=NN_PATH,
        )

    def test_quiet_on_parameter_dtype(self):
        assert_quiet(
            "P104",
            """
            def forward(x, dtype):
                return x.astype(dtype)
            """,
            relpath=NN_PATH,
        )


# -- K-series: config / key sync ----------------------------------------------

GOOD_CONFIG = """
    import os
    from dataclasses import dataclass

    @dataclass
    class Config:
        workers: int = 1

        @classmethod
        def from_env(cls):
            '''Reads ``REPRO_WORKERS``.'''
            return cls(workers=int(os.environ.get("REPRO_WORKERS", "1")))
"""

DRIFTED_CONFIG = """
    import os
    from dataclasses import dataclass

    @dataclass
    class Config:
        workers: int = 1
        extra: float = 0.0

        @classmethod
        def from_env(cls):
            '''Reads ``REPRO_WORKERS`` and ``REPRO_EXTRA``.'''
            return cls(workers=int(os.environ.get("REPRO_WORKERS", "1")))
"""


class TestK101FieldUnwired:
    def test_fires_on_missing_constructor_keyword(self):
        assert_fires("K101", DRIFTED_CONFIG)

    def test_quiet_when_wired(self):
        assert_quiet("K101", GOOD_CONFIG)


class TestK102EnvNameDrift:
    def test_fires_when_env_not_read(self):
        assert_fires("K102", DRIFTED_CONFIG)

    def test_quiet_when_env_read(self):
        assert_quiet("K102", GOOD_CONFIG)


class TestK103EnvDocDrift:
    def test_fires_on_documented_but_unread(self):
        # REPRO_EXTRA appears in the docstring but is never read
        assert_fires("K103", DRIFTED_CONFIG)

    def test_fires_on_read_but_undocumented(self):
        assert_fires("K103", """
            import os
            from dataclasses import dataclass

            @dataclass
            class Config:
                workers: int = 1

                @classmethod
                def from_env(cls):
                    '''Build from the environment.'''
                    return cls(workers=int(os.environ.get("REPRO_WORKERS", "1")))
        """)

    def test_quiet_when_in_sync(self):
        assert_quiet("K103", GOOD_CONFIG)


class TestK201PrecisionKeyGuard:
    def test_fires_on_unconditional_entry(self):
        assert_fires("K201", """
            def build_key(precision):
                key = {"kind": "detector"}
                key["precision"] = precision
                return key
        """)

    def test_quiet_when_guarded(self):
        assert_quiet("K201", """
            def build_key(precision):
                key = {"kind": "detector"}
                if precision != "float64":
                    key["precision"] = precision
                return key
        """)


class TestK202VerdictKeyCoordinates:
    def test_fires_when_digest_missing(self):
        assert_fires("K202", """
            def verdict_cache_key(fingerprint, precision):
                return {"fingerprint": fingerprint, "precision": precision}
        """)

    def test_fires_when_precision_missing(self):
        assert_fires("K202", """
            def build_verdict_key(fingerprint, detector_digest):
                key = {"fingerprint": fingerprint}
                key["detector_digest"] = detector_digest
                return key
        """)

    def test_quiet_with_all_coordinates(self):
        assert_quiet("K202", """
            def verdict_cache_key(fingerprint, detector_digest, precision):
                return {
                    "fingerprint": fingerprint,
                    "detector_digest": detector_digest,
                    "precision": precision,
                }
        """)

    def test_quiet_on_keyless_helpers(self):
        # a lookup helper that builds no payload is not a key builder
        assert_quiet("K202", """
            def verdict_key_hash(key):
                return hash_payload(key)
        """)


# -- L-series: lock / exception hygiene ---------------------------------------


class TestL101LockAcquire:
    def test_fires_without_finally(self):
        assert_fires(
            "L101",
            """
            from repro.runtime.locks import AdvisoryLock

            def fit(path):
                lock = AdvisoryLock(path)
                lock.acquire()
                work()
                lock.release()
            """,
            relpath=RUNTIME_PATH,
        )

    def test_fires_on_unbound_acquire(self):
        assert_fires(
            "L101",
            """
            from repro.runtime.locks import AdvisoryLock

            def fit(path):
                AdvisoryLock(path).acquire()
            """,
            relpath=RUNTIME_PATH,
        )

    def test_quiet_with_context_manager(self):
        assert_quiet(
            "L101",
            """
            from repro.runtime.locks import AdvisoryLock

            def fit(path):
                with AdvisoryLock(path):
                    work()
            """,
            relpath=RUNTIME_PATH,
        )

    def test_quiet_with_try_finally(self):
        assert_quiet(
            "L101",
            """
            from repro.runtime.locks import AdvisoryLock

            def fit(path):
                lock = AdvisoryLock(path)
                lock.acquire()
                try:
                    work()
                finally:
                    lock.release()
            """,
            relpath=RUNTIME_PATH,
        )


class TestL102LockPath:
    def test_fires_outside_locks_dir(self):
        assert_fires(
            "L102",
            """
            from repro.runtime.locks import AdvisoryLock

            def fit(root):
                return AdvisoryLock(root / "pending" / "fit.lock")
            """,
            relpath=RUNTIME_PATH,
        )

    def test_quiet_via_store_lock_path(self):
        assert_quiet(
            "L102",
            """
            from repro.runtime.locks import AdvisoryLock

            def fit(store, key):
                return AdvisoryLock(store.lock_path("detector", key))
            """,
            relpath=RUNTIME_PATH,
        )

    def test_quiet_with_locks_dirname_component(self):
        assert_quiet(
            "L102",
            """
            from repro.runtime.locks import AdvisoryLock
            from repro.runtime.store import LOCKS_DIRNAME

            def fit(root):
                return AdvisoryLock(root / LOCKS_DIRNAME / "fit.lock")
            """,
            relpath=RUNTIME_PATH,
        )

    def test_quiet_on_opaque_path(self):
        assert_quiet(
            "L102",
            """
            from repro.runtime.locks import AdvisoryLock

            def fit(path):
                return AdvisoryLock(path)
            """,
            relpath=RUNTIME_PATH,
        )


class TestL201PoolTaskUnpicklable:
    def test_fires_on_lambda(self):
        assert_fires(
            "L201",
            """
            def dispatch(session, model):
                return session.submit(lambda: model.predict())
            """,
            relpath=RUNTIME_PATH,
        )

    def test_fires_on_closure(self):
        assert_fires(
            "L201",
            """
            def dispatch(session, model):
                def task():
                    return model.predict()
                return session.submit(task)
            """,
            relpath=RUNTIME_PATH,
        )

    def test_fires_on_lambda_assigned_name(self):
        assert_fires(
            "L201",
            """
            score = lambda model: model.predict()

            def dispatch(session, model):
                return session.submit(score, model)
            """,
            relpath=RUNTIME_PATH,
        )

    def test_fires_on_bound_method(self):
        assert_fires(
            "L201",
            """
            def dispatch(session, service, model):
                return session.submit(service.inspect, model)
            """,
            relpath=RUNTIME_PATH,
        )

    def test_quiet_on_module_level_task(self):
        assert_quiet(
            "L201",
            """
            def _audit_task(model):
                return model.predict()

            def dispatch(session, model):
                return session.submit(_audit_task, model)
            """,
            relpath=RUNTIME_PATH,
        )

    def test_quiet_on_imported_function(self):
        assert_quiet(
            "L201",
            """
            from repro.runtime import workers

            def dispatch(session, ref, model):
                return session.submit(workers._ref_audit_task, ref, model)
            """,
            relpath=RUNTIME_PATH,
        )

    def test_quiet_on_parameter_and_star_args(self):
        assert_quiet(
            "L201",
            """
            def relay(session, fn, args):
                session.submit(fn, *args)
                return session.submit(*args)
            """,
            relpath=RUNTIME_PATH,
        )

    def test_quiet_outside_runtime(self):
        assert_quiet("L201", """
            def dispatch(session, model):
                return session.submit(lambda: model.predict())
        """)


class TestL301SilentBroadExcept:
    def test_fires_on_silent_pass(self):
        assert_fires(
            "L301",
            """
            def load():
                try:
                    risky()
                except Exception:
                    pass
            """,
            relpath=RUNTIME_PATH,
        )

    def test_quiet_on_narrow_pass(self):
        assert_quiet(
            "L301",
            """
            def load():
                try:
                    risky()
                except OSError:
                    pass
            """,
            relpath=RUNTIME_PATH,
        )

    def test_quiet_outside_runtime(self):
        assert_quiet("L301", """
            def load():
                try:
                    risky()
                except Exception:
                    pass
        """)


class TestL302BroadExceptSwallow:
    def test_fires_on_log_and_swallow(self):
        assert_fires(
            "L302",
            """
            import warnings

            def load():
                try:
                    return risky()
                except Exception as exc:
                    warnings.warn(f"ignored: {exc}")
                return None
            """,
            relpath=RUNTIME_PATH,
        )

    def test_quiet_on_reraise(self):
        assert_quiet(
            "L302",
            """
            def load(slots):
                slots.acquire()
                try:
                    return risky()
                except BaseException:
                    slots.release()
                    raise
            """,
            relpath=RUNTIME_PATH,
        )

    def test_quiet_on_set_exception(self):
        assert_quiet(
            "L302",
            """
            def submit(future, fn):
                try:
                    future.set_result(fn())
                except Exception as exc:
                    future.set_exception(exc)
            """,
            relpath=RUNTIME_PATH,
        )

    def test_quiet_on_deferred_raise(self):
        assert_quiet(
            "L302",
            """
            def drain():
                error = None
                try:
                    top_up()
                except BaseException as exc:
                    error = exc
                if error is not None:
                    raise error
            """,
            relpath=RUNTIME_PATH,
        )

    def test_quiet_on_narrow_catch(self):
        assert_quiet(
            "L302",
            """
            import warnings

            def load():
                try:
                    return risky()
                except (OSError, ValueError) as exc:
                    warnings.warn(f"corrupt: {exc}")
                return None
            """,
            relpath=RUNTIME_PATH,
        )


# -- registry sanity ----------------------------------------------------------


# -- O-series: telemetry hygiene ----------------------------------------------


class TestO101SpanLeaked:
    def test_fires_on_discarded_handle(self):
        assert_fires("O101", """
            def audit(tracer):
                tracer.start_span("gateway.audit")
                work()
        """)

    def test_fires_on_named_handle_without_finally(self):
        assert_fires("O101", """
            def audit(tracer):
                handle = tracer.start_span("gateway.audit")
                work()
                handle.end()
        """)

    def test_fires_on_measure_outside_with(self):
        assert_fires("O101", """
            def bench(timer):
                timer.measure("fit")
                work()
        """)

    def test_quiet_with_try_finally_end(self):
        assert_quiet("O101", """
            def audit(tracer):
                handle = tracer.start_span("gateway.audit")
                try:
                    work()
                finally:
                    handle.end()
        """)

    def test_quiet_with_context_manager(self):
        assert_quiet("O101", """
            def bench(timer, tracer):
                with timer.measure("fit"):
                    work()
                with tracer.start_span("x").set(stage="fit"):
                    work()
        """)

    def test_quiet_with_named_with(self):
        assert_quiet("O101", """
            def audit(tracer):
                handle = tracer.start_span("gateway.audit")
                with handle:
                    work()
        """)

    def test_quiet_inside_obs_package(self):
        assert_quiet(
            "O101",
            """
            def span(self, name):
                handle = self.start_span(name)
                return handle
            """,
            relpath="src/repro/obs/trace.py",
        )


def test_every_registered_rule_has_fixture_coverage():
    """Every rule id in the registry is exercised by a Test class above."""
    covered = set()
    for name, obj in globals().items():
        if name.startswith("Test") and hasattr(obj, "__mro__"):
            for rule_id in RULES:
                if name.startswith(f"Test{rule_id}"):
                    covered.add(rule_id)
    assert covered == set(RULES), f"rules without fixtures: {set(RULES) - covered}"


def test_rule_metadata_complete():
    for rule_id, rule in RULES.items():
        assert rule.id == rule_id
        assert rule.name, f"{rule_id} has no name"
        assert rule.summary, f"{rule_id} has no summary"


@pytest.mark.parametrize(
    "family,expected", [("D", 6), ("P", 4), ("K", 5), ("L", 5), ("O", 1)]
)
def test_family_sizes(family, expected):
    assert sum(1 for rule_id in RULES if rule_id[0] == family) == expected
