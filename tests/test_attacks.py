"""Tests for the backdoor attack implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    MAIN_TABLE_ATTACKS,
    AllToAllAttack,
    attack_defaults,
    available_attacks,
    build_attack,
    canonical_attack_name,
)
from repro.attacks.base import apply_trigger_formula, corner_patch_mask

ALL_ATTACKS = available_attacks()


@pytest.mark.parametrize("name", ALL_ATTACKS)
def test_trigger_keeps_images_in_range(name, tiny_dataset):
    attack = build_attack(name, target_class=0, seed=0)
    triggered = attack.apply_trigger(tiny_dataset.images[:8], rng=0)
    assert triggered.shape == tiny_dataset.images[:8].shape
    assert triggered.min() >= 0.0 and triggered.max() <= 1.0


@pytest.mark.parametrize("name", ALL_ATTACKS)
def test_trigger_actually_modifies_images(name, tiny_dataset):
    attack = build_attack(name, target_class=0, seed=0)
    original = tiny_dataset.images[:8]
    triggered = attack.apply_trigger(original, rng=0)
    assert not np.allclose(triggered, original)


@pytest.mark.parametrize("name", ALL_ATTACKS)
def test_poisoning_changes_expected_labels(name, tiny_dataset):
    attack = build_attack(name, target_class=1, seed=0)
    result = attack.poison(tiny_dataset, poison_rate=0.2, rng=0)
    assert len(result.dataset) == len(tiny_dataset)
    assert result.poison_indices.size >= 1
    poisoned_labels = result.dataset.labels[result.poison_indices]
    if attack.clean_label:
        # clean-label attacks never change labels and only touch the target class
        assert np.all(poisoned_labels == attack.target_class)
        assert np.array_equal(result.dataset.labels, tiny_dataset.labels)
    elif attack.all_to_all:
        original = tiny_dataset.labels[result.poison_indices]
        assert np.array_equal(poisoned_labels, (original + 1) % tiny_dataset.num_classes)
    else:
        assert np.all(poisoned_labels == attack.target_class)


@pytest.mark.parametrize("name", ALL_ATTACKS)
def test_poisoning_preserves_clean_samples(name, tiny_dataset):
    attack = build_attack(name, target_class=1, seed=0)
    result = attack.poison(tiny_dataset, poison_rate=0.1, rng=0)
    untouched = np.setdiff1d(
        np.arange(len(tiny_dataset)),
        np.concatenate([result.poison_indices, result.cover_indices]),
    )
    assert np.allclose(result.dataset.images[untouched], tiny_dataset.images[untouched])
    assert np.array_equal(result.dataset.labels[untouched], tiny_dataset.labels[untouched])


def test_cover_samples_keep_original_labels(tiny_dataset):
    attack = build_attack("adaptive_blend", target_class=0, seed=0)
    result = attack.poison(tiny_dataset, poison_rate=0.1, cover_rate=0.1, rng=0)
    assert result.cover_indices.size >= 1
    assert np.array_equal(
        result.dataset.labels[result.cover_indices],
        tiny_dataset.labels[result.cover_indices],
    )
    # cover samples still carry the trigger (image modified)
    assert not np.allclose(
        result.dataset.images[result.cover_indices],
        tiny_dataset.images[result.cover_indices],
    )


def test_poison_rate_controls_poison_count(tiny_dataset):
    attack = build_attack("badnets", target_class=0, seed=0)
    small = attack.poison(tiny_dataset, poison_rate=0.05, rng=0)
    large = attack.poison(tiny_dataset, poison_rate=0.4, rng=0)
    assert large.poison_indices.size > small.poison_indices.size
    assert small.poison_rate <= 0.1


def test_dirty_label_attacks_skip_target_class_samples(tiny_dataset):
    attack = build_attack("badnets", target_class=2, seed=0)
    result = attack.poison(tiny_dataset, poison_rate=0.3, rng=0)
    original_labels = tiny_dataset.labels[result.poison_indices]
    assert np.all(original_labels != 2)


def test_triggered_test_set_keeps_labels(tiny_test_dataset):
    attack = build_attack("blend", target_class=0, seed=0)
    triggered = attack.triggered_test_set(tiny_test_dataset)
    assert np.array_equal(triggered.labels, tiny_test_dataset.labels)
    assert not np.allclose(triggered.images, tiny_test_dataset.images)


def test_trigger_formula_blends_correctly():
    images = np.zeros((1, 1, 2, 2))
    mask = np.ones((1, 2, 2))
    trigger = np.ones((1, 2, 2))
    fully_replaced = apply_trigger_formula(images, mask, trigger, alpha=0.0)
    assert np.allclose(fully_replaced, 1.0)
    half = apply_trigger_formula(images, mask, trigger, alpha=0.5)
    assert np.allclose(half, 0.5)
    untouched = apply_trigger_formula(images, np.zeros((1, 2, 2)), trigger, alpha=0.0)
    assert np.allclose(untouched, 0.0)


def test_trigger_formula_validates_alpha():
    with pytest.raises(ValueError):
        apply_trigger_formula(np.zeros((1, 1, 2, 2)), np.ones((1, 2, 2)), np.ones((1, 2, 2)), alpha=1.5)


@pytest.mark.parametrize(
    "corner", ["bottom-right", "top-left", "top-right", "bottom-left", "center"]
)
def test_corner_patch_mask_sizes(corner):
    mask = corner_patch_mask((3, 8, 8), patch_size=3, corner=corner)
    assert mask.shape == (3, 8, 8)
    assert mask.sum() == 3 * 3 * 3


def test_corner_patch_mask_rejects_unknown_corner():
    with pytest.raises(ValueError):
        corner_patch_mask((3, 8, 8), 3, corner="middle")


def test_wanet_is_deterministic_per_image(tiny_dataset):
    attack = build_attack("wanet", seed=0)
    a = attack.apply_trigger(tiny_dataset.images[:4])
    b = attack.apply_trigger(tiny_dataset.images[:4])
    assert np.allclose(a, b)


def test_dynamic_triggers_differ_across_samples(tiny_dataset):
    attack = build_attack("dynamic", seed=0)
    triggered = attack.apply_trigger(tiny_dataset.images[:6])
    differences = triggered - tiny_dataset.images[:6]
    # the modified region should differ between at least two samples
    masks = np.abs(differences) > 1e-9
    assert not np.array_equal(masks[0], masks[1]) or not np.array_equal(masks[1], masks[2])


def test_sig_attack_adds_periodic_signal(tiny_dataset):
    attack = build_attack("sig", amplitude=0.2, seed=0)
    triggered = attack.apply_trigger(tiny_dataset.images[:2])
    delta = triggered - tiny_dataset.images[:2]
    # the sinusoidal signal is constant along rows (before clipping)
    assert np.abs(delta).max() > 0.0


def test_all_to_all_asr_helper():
    attack = AllToAllAttack(seed=0)
    predictions = np.array([1, 2, 3, 0])
    labels = np.array([0, 1, 2, 3])
    assert attack.attack_success_rate(predictions, labels, num_classes=4) == 1.0


def test_registry_aliases_and_defaults():
    assert canonical_attack_name("Adap-Blend") == "adaptive_blend"
    assert canonical_attack_name("badnet") == "badnets"
    assert canonical_attack_name("LC") == "label_consistent"
    with pytest.raises(KeyError):
        canonical_attack_name("unknown-attack")
    defaults = attack_defaults("wanet")
    assert defaults.cover_rate > 0
    assert set(MAIN_TABLE_ATTACKS).issubset(set(available_attacks()))


def test_backdoored_model_learns_trigger(tiny_dataset, tiny_test_dataset, micro_profile):
    """Integration: a poisoned MLP reaches high ASR while keeping clean accuracy."""
    from repro.models.registry import build_classifier

    from repro.config import TrainingConfig

    attack = build_attack("badnets", target_class=0, seed=0, patch_size=5)
    result = attack.poison(tiny_dataset, poison_rate=0.25, rng=0)
    classifier = build_classifier("mlp", tiny_dataset.num_classes, tiny_dataset.image_size, rng=0)
    classifier.fit(result.dataset, TrainingConfig(epochs=20, batch_size=16, learning_rate=1e-2), rng=1)
    clean_accuracy = classifier.evaluate(tiny_test_dataset)
    triggered = attack.triggered_test_set(tiny_test_dataset)
    asr = classifier.evaluate_attack_success(
        triggered.images, attack.target_class, tiny_test_dataset.labels
    )
    # the micro MLP substrate is deliberately tiny, so the thresholds are
    # conservative: the backdoor must clearly beat chance without destroying
    # clean accuracy
    assert clean_accuracy > 0.45
    assert asr > 0.3
