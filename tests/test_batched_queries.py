"""Tests for the batched black-box query engine.

Covers the three layers of the megabatch path: the optimisers' batch-objective
protocol (sequential and batched evaluation must drive identical runs), the
``VisualPrompt.apply_many`` broadcast (must match per-candidate ``apply``),
and the end-to-end ``train_prompt_blackbox`` / ``BpromDetector.inspect``
equivalence plus per-model query accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PromptConfig
from repro.ml.cma_es import CMAES, SPSA, RandomSearch, resolve_batch_objective
from repro.prompting import QueryCounter, VisualPrompt, train_prompt_blackbox

QUADRATIC_TARGET = np.array([1.0, -2.0, 0.5, 3.0])


def _quadratic(x):
    return float(np.sum((x - QUADRATIC_TARGET) ** 2))


def _quadratic_batch(candidates):
    return np.sum((candidates - QUADRATIC_TARGET) ** 2, axis=1)


def _optimizers():
    return [
        ("cmaes", lambda: CMAES(iterations=20, population=6, sigma=0.5, rng=0)),
        ("spsa", lambda: SPSA(iterations=40, learning_rate=0.3, perturbation=0.1, rng=0)),
        ("random", lambda: RandomSearch(iterations=40, sigma=0.5, rng=0)),
    ]


# -- batch-objective protocol -----------------------------------------------------


@pytest.mark.parametrize("name,make", _optimizers(), ids=[n for n, _ in _optimizers()])
def test_batched_and_sequential_runs_are_identical(name, make):
    """Same RNG seed, scalar vs. batch objective: identical runs throughout."""
    sequential = make().minimize(_quadratic, np.zeros(4))
    batched = make().minimize(None, np.zeros(4), batch_objective=_quadratic_batch)
    assert batched.evaluations == sequential.evaluations
    assert batched.history == sequential.history
    np.testing.assert_array_equal(batched.best_x, sequential.best_x)
    assert batched.best_value == sequential.best_value


def test_resolve_batch_objective_requires_a_callback():
    with pytest.raises(ValueError):
        resolve_batch_objective(None, None)
    evaluate = resolve_batch_objective(_quadratic, None)
    np.testing.assert_allclose(evaluate(np.zeros((3, 4))), [_quadratic(np.zeros(4))] * 3)


def test_batch_objective_shape_is_validated():
    optimizer = CMAES(iterations=1, population=4, rng=0)
    with pytest.raises(ValueError):
        optimizer.minimize(None, np.zeros(4), batch_objective=lambda c: np.zeros(c.shape[0] + 1))


# -- apply_many -------------------------------------------------------------------


def test_apply_many_matches_per_candidate_apply(tiny_dataset):
    prompt = VisualPrompt(source_size=12, inner_size=8, channels=3, rng=0)
    images = tiny_dataset.images[:5]
    flats = np.linspace(-0.5, 0.5, 3 * prompt.num_parameters).reshape(3, -1)
    mega = prompt.apply_many(flats, images)
    assert mega.shape == (3 * 5, 3, 12, 12)
    for index, flat in enumerate(flats):
        prompt.set_flat(flat)
        np.testing.assert_array_equal(mega[index * 5 : (index + 1) * 5], prompt.apply(images))


def test_apply_many_caches_the_base_canvas(tiny_dataset):
    prompt = VisualPrompt(source_size=12, inner_size=8, channels=3, rng=0)
    images = tiny_dataset.images[:4]
    first = prompt.base_canvas(images)
    assert prompt.base_canvas(images) is first  # same array object: memo hit
    other = prompt.base_canvas(tiny_dataset.images[:3])
    assert other is not first  # different batch invalidates the memo
    prompt.clear_canvas_cache()
    assert prompt.base_canvas(images) is not first


def test_apply_many_validates_parameter_width(tiny_dataset):
    prompt = VisualPrompt(source_size=12, inner_size=8, channels=3, rng=0)
    with pytest.raises(ValueError):
        prompt.apply_many(np.zeros((2, 3)), tiny_dataset.images[:2])


def test_prompt_pickles_without_canvas_cache(tiny_dataset):
    import pickle

    prompt = VisualPrompt(source_size=12, inner_size=8, channels=3, rng=0)
    prompt.base_canvas(tiny_dataset.images[:4])
    clone = pickle.loads(pickle.dumps(prompt))
    assert clone._canvas_cache is None
    np.testing.assert_array_equal(clone.theta, prompt.theta)


# -- end-to-end black-box training ------------------------------------------------


def _prompt_config(batched, optimizer="cma-es"):
    return PromptConfig(
        source_size=12,
        inner_size=8,
        epochs=1,
        batch_size=16,
        blackbox_optimizer=optimizer,
        blackbox_iterations=5,
        blackbox_population=4,
        blackbox_batched=batched,
    )


@pytest.mark.parametrize("optimizer", ["cma-es", "spsa", "random"])
def test_blackbox_batched_matches_sequential(optimizer, trained_mlp, tiny_dataset):
    sequential = train_prompt_blackbox(
        trained_mlp, tiny_dataset, _prompt_config(False, optimizer), rng=0
    )
    batched = train_prompt_blackbox(
        trained_mlp, tiny_dataset, _prompt_config(True, optimizer), rng=0
    )
    seq_result = sequential.optimization_result
    bat_result = batched.optimization_result
    assert bat_result.evaluations == seq_result.evaluations
    np.testing.assert_allclose(bat_result.history, seq_result.history, atol=1e-9)
    np.testing.assert_allclose(bat_result.best_x, seq_result.best_x, atol=1e-9)
    # identical query budget; the batched engine needs no more round-trips,
    # and strictly fewer whenever a generation holds >1 candidate (random
    # search proposes a single candidate per iteration, so it stays 1:1)
    assert batched.query_counter.images == sequential.query_counter.images
    assert batched.query_counter.calls <= sequential.query_counter.calls
    if optimizer != "random":
        assert batched.query_counter.calls < sequential.query_counter.calls


def test_blackbox_query_budget_accounting(trained_mlp, tiny_dataset):
    counter = QueryCounter()
    config = _prompt_config(True)
    prompted = train_prompt_blackbox(
        trained_mlp, tiny_dataset, config, rng=0, query_counter=counter
    )
    assert prompted.query_counter is counter
    result = prompted.optimization_result
    batch = min(config.batch_size, len(tiny_dataset))
    # evaluations = 1 initial + generations x lambda candidates, each scored
    # on the fixed optimisation batch
    assert result.evaluations == 1 + config.blackbox_iterations * config.blackbox_population
    assert counter.images == result.evaluations * batch
    # one megabatch query per generation (+ the initial evaluation)
    assert counter.calls == 1 + config.blackbox_iterations


def test_query_counter_wrap_counts_images():
    counter = QueryCounter()
    query = counter.wrap(lambda images: images.sum(axis=(1, 2, 3)))
    query(np.zeros((3, 1, 2, 2)))
    query(np.zeros((5, 1, 2, 2)))
    assert counter.images == 8
    assert counter.calls == 2


# -- detector surface -------------------------------------------------------------


def test_inspect_reports_query_count(micro_profile, tiny_dataset, tiny_test_dataset, trained_mlp):
    from repro.core.detector import BpromDetector

    detector = BpromDetector(profile=micro_profile, architecture="mlp", seed=0)
    detector.fit(tiny_test_dataset, tiny_dataset, tiny_test_dataset)
    result = detector.inspect(trained_mlp)
    config = micro_profile.prompt
    batch = min(config.batch_size, len(tiny_dataset))
    expected_evals = 1 + config.blackbox_iterations * config.blackbox_population
    assert result.query_count == expected_evals * batch
    assert 0 < result.query_calls <= result.query_count

    # the batched and sequential engines must agree on the verdict
    from dataclasses import replace

    sequential_profile = micro_profile.with_overrides(
        prompt=replace(config, blackbox_batched=False)
    )
    seq_detector = BpromDetector(profile=sequential_profile, architecture="mlp", seed=0)
    seq_detector.fit(tiny_test_dataset, tiny_dataset, tiny_test_dataset)
    seq_result = seq_detector.inspect(trained_mlp)
    assert abs(result.backdoor_score - seq_result.backdoor_score) <= 1e-9
    assert result.is_backdoored == seq_result.is_backdoored
    assert result.query_count == seq_result.query_count

    # the fan-out path surfaces the same accounting and verdicts
    many = detector.inspect_many([trained_mlp])
    assert many[0].backdoor_score == result.backdoor_score
    assert many[0].query_count == result.query_count
    assert many[0].query_calls == result.query_calls
