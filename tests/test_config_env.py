"""Round-trip coverage for ``RuntimeConfig.from_env``.

Every ``REPRO_*`` knob — the original runtime set plus the registry/gateway
additions — must survive the environment round trip, defaults must hold when
variables are unset or empty, and malformed values must fail with an error
that names the offending variable.
"""

from __future__ import annotations

import os

import pytest

from repro.config import DEFAULT_RUNTIME, RuntimeConfig

ALL_ENV_KNOBS = (
    "REPRO_WORKERS",
    "REPRO_BACKEND",
    "REPRO_CACHE_DIR",
    "REPRO_CACHE",
    "REPRO_SHARD_DIRS",
    "REPRO_MAX_IN_FLIGHT",
    "REPRO_SHADOW_TRAINING",
    "REPRO_REGISTRY_LRU_BYTES",
    "REPRO_REGISTRY_LOCK_WAIT",
    "REPRO_REGISTRY_LOCK_STALE",
    "REPRO_GATEWAY_MAX_IN_FLIGHT",
    "REPRO_GATEWAY_BACKEND",
    "REPRO_GATEWAY_WORKERS",
    "REPRO_DETECTOR_GC_BYTES",
    "REPRO_PRECISION",
    "REPRO_VERDICT_CACHE",
    "REPRO_VERDICT_CACHE_BYTES",
    "REPRO_VERDICT_CACHE_TTL",
    "REPRO_TELEMETRY",
    "REPRO_TELEMETRY_DIR",
)


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for name in ALL_ENV_KNOBS:
        monkeypatch.delenv(name, raising=False)


def test_unset_environment_yields_defaults():
    assert RuntimeConfig.from_env() == DEFAULT_RUNTIME


def test_every_knob_round_trips(monkeypatch, tmp_path):
    shard_a, shard_b = str(tmp_path / "a"), str(tmp_path / "b")
    monkeypatch.setenv("REPRO_WORKERS", "4")
    monkeypatch.setenv("REPRO_BACKEND", "process")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_SHARD_DIRS", os.pathsep.join([shard_a, shard_b]))
    monkeypatch.setenv("REPRO_MAX_IN_FLIGHT", "6")
    monkeypatch.setenv("REPRO_SHADOW_TRAINING", "STACKED")  # case-folded
    monkeypatch.setenv("REPRO_REGISTRY_LRU_BYTES", "1048576")
    monkeypatch.setenv("REPRO_REGISTRY_LOCK_WAIT", "12.5")
    monkeypatch.setenv("REPRO_REGISTRY_LOCK_STALE", "90")
    monkeypatch.setenv("REPRO_GATEWAY_MAX_IN_FLIGHT", "8")
    monkeypatch.setenv("REPRO_GATEWAY_BACKEND", "process")
    monkeypatch.setenv("REPRO_GATEWAY_WORKERS", "3")
    monkeypatch.setenv("REPRO_DETECTOR_GC_BYTES", "4194304")
    monkeypatch.setenv("REPRO_PRECISION", "FLOAT32")  # case-folded
    monkeypatch.setenv("REPRO_VERDICT_CACHE", "1")
    monkeypatch.setenv("REPRO_VERDICT_CACHE_BYTES", "65536")
    monkeypatch.setenv("REPRO_VERDICT_CACHE_TTL", "3600")
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "telemetry"))
    runtime = RuntimeConfig.from_env()
    assert runtime == RuntimeConfig(
        workers=4,
        backend="process",
        cache_dir=str(tmp_path / "cache"),
        cache=True,
        shard_dirs=(shard_a, shard_b),
        max_in_flight=6,
        shadow_training="stacked",
        registry_lru_bytes=1 << 20,
        registry_lock_wait=12.5,
        registry_lock_stale=90.0,
        gateway_max_in_flight=8,
        gateway_backend="process",
        gateway_workers=3,
        detector_gc_bytes=4 << 20,
        precision="float32",
        verdict_cache=True,
        verdict_cache_bytes=65536,
        verdict_cache_ttl=3600.0,
        telemetry=True,
        telemetry_dir=str(tmp_path / "telemetry"),
    )


def test_empty_values_fall_back_to_defaults(monkeypatch):
    for name in ALL_ENV_KNOBS:
        if name in (
            "REPRO_BACKEND",
            "REPRO_GATEWAY_BACKEND",
            "REPRO_SHADOW_TRAINING",
            "REPRO_CACHE",
            "REPRO_VERDICT_CACHE",
            "REPRO_TELEMETRY",
        ):
            continue  # string knobs: empty is handled below / means unset
        monkeypatch.setenv(name, "")
    runtime = RuntimeConfig.from_env()
    assert runtime.workers == 1
    assert runtime.cache_dir is None
    assert runtime.shard_dirs is None
    assert runtime.max_in_flight is None
    assert runtime.registry_lru_bytes is None
    assert runtime.registry_lock_wait == 600.0
    assert runtime.registry_lock_stale == 3600.0
    assert runtime.gateway_max_in_flight is None
    assert runtime.gateway_backend == "thread"
    assert runtime.gateway_workers is None
    assert runtime.detector_gc_bytes is None
    assert runtime.precision == "float64"
    assert runtime.verdict_cache is False
    assert runtime.verdict_cache_bytes is None
    assert runtime.verdict_cache_ttl is None
    assert runtime.telemetry is False
    assert runtime.telemetry_dir is None


def test_cache_toggle(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    assert RuntimeConfig.from_env().cache is False
    monkeypatch.setenv("REPRO_CACHE", "1")
    assert RuntimeConfig.from_env().cache is True


def test_verdict_cache_toggle(monkeypatch):
    monkeypatch.setenv("REPRO_VERDICT_CACHE", "0")
    assert RuntimeConfig.from_env().verdict_cache is False
    monkeypatch.setenv("REPRO_VERDICT_CACHE", "1")
    assert RuntimeConfig.from_env().verdict_cache is True


def test_telemetry_toggle(monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY", "0")
    assert RuntimeConfig.from_env().telemetry is False
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    assert RuntimeConfig.from_env().telemetry is True


def test_single_shard_dir(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SHARD_DIRS", str(tmp_path / "only"))
    assert RuntimeConfig.from_env().shard_dirs == (str(tmp_path / "only"),)


@pytest.mark.parametrize(
    "name",
    [
        "REPRO_WORKERS",
        "REPRO_MAX_IN_FLIGHT",
        "REPRO_REGISTRY_LRU_BYTES",
        "REPRO_GATEWAY_MAX_IN_FLIGHT",
        "REPRO_GATEWAY_WORKERS",
        "REPRO_DETECTOR_GC_BYTES",
        "REPRO_VERDICT_CACHE_BYTES",
    ],
)
def test_malformed_integer_names_the_variable(monkeypatch, name):
    monkeypatch.setenv(name, "lots")
    with pytest.raises(ValueError, match=name):
        RuntimeConfig.from_env()


@pytest.mark.parametrize(
    "name",
    [
        "REPRO_REGISTRY_LOCK_WAIT",
        "REPRO_REGISTRY_LOCK_STALE",
        "REPRO_VERDICT_CACHE_TTL",
    ],
)
def test_malformed_float_names_the_variable(monkeypatch, name):
    monkeypatch.setenv(name, "soon")
    with pytest.raises(ValueError, match=name):
        RuntimeConfig.from_env()


def test_malformed_enumerations_fail_fast(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "quantum")
    with pytest.raises(ValueError, match="backend"):
        RuntimeConfig.from_env()
    monkeypatch.delenv("REPRO_BACKEND")
    monkeypatch.setenv("REPRO_GATEWAY_BACKEND", "quantum")
    with pytest.raises(ValueError, match="gateway_backend"):
        RuntimeConfig.from_env()
    monkeypatch.delenv("REPRO_GATEWAY_BACKEND")
    monkeypatch.setenv("REPRO_SHADOW_TRAINING", "psychic")
    with pytest.raises(ValueError, match="shadow_training"):
        RuntimeConfig.from_env()
    monkeypatch.delenv("REPRO_SHADOW_TRAINING")
    monkeypatch.setenv("REPRO_PRECISION", "float16")
    with pytest.raises(ValueError, match="precision"):
        RuntimeConfig.from_env()


def test_out_of_range_values_fail_validation(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "0")
    with pytest.raises(ValueError, match="workers"):
        RuntimeConfig.from_env()
    monkeypatch.setenv("REPRO_WORKERS", "1")
    monkeypatch.setenv("REPRO_GATEWAY_MAX_IN_FLIGHT", "0")
    with pytest.raises(ValueError, match="gateway_max_in_flight"):
        RuntimeConfig.from_env()
    monkeypatch.setenv("REPRO_GATEWAY_MAX_IN_FLIGHT", "2")
    monkeypatch.setenv("REPRO_GATEWAY_WORKERS", "0")
    with pytest.raises(ValueError, match="gateway_workers"):
        RuntimeConfig.from_env()
    monkeypatch.delenv("REPRO_GATEWAY_WORKERS")
    monkeypatch.setenv("REPRO_DETECTOR_GC_BYTES", "-1")
    with pytest.raises(ValueError, match="detector_gc_bytes"):
        RuntimeConfig.from_env()
    monkeypatch.delenv("REPRO_DETECTOR_GC_BYTES")
    monkeypatch.setenv("REPRO_REGISTRY_LOCK_STALE", "0")
    with pytest.raises(ValueError, match="registry_lock_stale"):
        RuntimeConfig.from_env()
    monkeypatch.delenv("REPRO_REGISTRY_LOCK_STALE")
    monkeypatch.setenv("REPRO_VERDICT_CACHE_BYTES", "-1")
    with pytest.raises(ValueError, match="verdict_cache_bytes"):
        RuntimeConfig.from_env()
    monkeypatch.delenv("REPRO_VERDICT_CACHE_BYTES")
    monkeypatch.setenv("REPRO_VERDICT_CACHE_TTL", "0")
    with pytest.raises(ValueError, match="verdict_cache_ttl"):
        RuntimeConfig.from_env()


def test_registry_and_gateway_read_the_env_knobs(monkeypatch, tmp_path):
    """The env knobs actually reach the subsystems they configure."""
    from repro.runtime.gateway import AuditGateway
    from repro.runtime.registry import DetectorRegistry

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_REGISTRY_LRU_BYTES", "2048")
    monkeypatch.setenv("REPRO_REGISTRY_LOCK_WAIT", "1.5")
    monkeypatch.setenv("REPRO_REGISTRY_LOCK_STALE", "99")
    monkeypatch.setenv("REPRO_GATEWAY_MAX_IN_FLIGHT", "5")
    monkeypatch.setenv("REPRO_GATEWAY_BACKEND", "process")
    monkeypatch.setenv("REPRO_GATEWAY_WORKERS", "3")
    runtime = RuntimeConfig.from_env()
    registry = DetectorRegistry(runtime=runtime)
    assert registry.lru_bytes == 2048
    assert registry.lock_wait_seconds == 1.5
    assert registry.lock_stale_seconds == 99.0
    gateway = AuditGateway(registry=registry)
    assert gateway.max_in_flight == 5
    assert gateway.worker_pool.backend == "process"  # the store is enabled here
    assert gateway.worker_pool.workers == 3
    gateway.close()
