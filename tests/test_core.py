"""Tests for the BPROM core: shadow models, meta-classifier, detector, inconsistency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import build_attack
from repro.core import (
    BpromDetector,
    MetaClassifier,
    ShadowModelFactory,
    prompt_shadow_models,
    prompted_accuracy_gap,
    subspace_inconsistency_score,
)
from repro.core.inconsistency import class_subspace_projection, meta_feature_projection, subspace_report
from repro.models.registry import build_classifier


@pytest.fixture(scope="module")
def shadow_factory(micro_profile):
    return ShadowModelFactory(
        profile=micro_profile, architecture="mlp", shadow_attack="badnets", seed=0
    )


@pytest.fixture(scope="module")
def shadow_pool(shadow_factory, tiny_dataset):
    return shadow_factory.build_pool(tiny_dataset, num_clean=2, num_backdoor=2)


def test_shadow_pool_composition(shadow_pool):
    assert len(shadow_pool) == 4
    assert [s.is_backdoored for s in shadow_pool] == [False, False, True, True]
    for shadow in shadow_pool:
        assert shadow.clean_accuracy > 0.3
    backdoored = [s for s in shadow_pool if s.is_backdoored]
    assert all(s.attack_name == "badnets" for s in backdoored)
    assert all(s.target_class is not None for s in backdoored)


def test_shadow_models_have_distinct_parameters(shadow_pool):
    first = shadow_pool[0].classifier.model.parameters()[0].data
    second = shadow_pool[1].classifier.model.parameters()[0].data
    assert not np.allclose(first, second)


def test_prompt_shadow_models_returns_prompted_classifiers(
    shadow_pool, tiny_dataset, micro_profile
):
    prompted = prompt_shadow_models(shadow_pool[:2], tiny_dataset, micro_profile, seed=0)
    assert len(prompted) == 2
    for item in prompted:
        probabilities = item.predict_source_proba(tiny_dataset.images[:3])
        assert probabilities.shape == (3, tiny_dataset.num_classes)


def test_meta_classifier_requires_query_pool(tiny_dataset):
    meta = MetaClassifier(query_samples=4, num_trees=5, augmentation=2, rng=0)
    with pytest.raises(RuntimeError):
        meta.fit([], [])
    with pytest.raises(ValueError):
        meta.set_query_pool(tiny_dataset.subset([0, 1]))  # fewer samples than q


def test_meta_classifier_fit_and_score(shadow_pool, tiny_dataset, tiny_test_dataset, micro_profile):
    prompted = prompt_shadow_models(shadow_pool, tiny_dataset, micro_profile, seed=0)
    labels = [int(s.is_backdoored) for s in shadow_pool]
    meta = MetaClassifier(query_samples=4, num_trees=10, augmentation=3, rng=0)
    meta.set_query_pool(tiny_test_dataset)
    dataset = meta.build_meta_dataset(prompted, labels)
    assert dataset.features.shape == (len(prompted) * 3, 4 * tiny_dataset.num_classes)
    meta.fit(prompted, labels)
    score = meta.backdoor_score(prompted[0])
    assert 0.0 <= score <= 1.0
    assert meta.predict(prompted[0]) in (0, 1)
    # the meta-classifier should at least separate its own training shadow models
    clean_scores = [meta.backdoor_score(p) for p, l in zip(prompted, labels) if l == 0]
    backdoor_scores = [meta.backdoor_score(p) for p, l in zip(prompted, labels) if l == 1]
    assert np.mean(backdoor_scores) >= np.mean(clean_scores)


def test_meta_classifier_rejects_mismatched_labels(shadow_pool, tiny_dataset, tiny_test_dataset, micro_profile):
    prompted = prompt_shadow_models(shadow_pool[:2], tiny_dataset, micro_profile, seed=0)
    meta = MetaClassifier(query_samples=4, num_trees=5, augmentation=2, rng=0)
    meta.set_query_pool(tiny_test_dataset)
    with pytest.raises(ValueError):
        meta.build_meta_dataset(prompted, [0])


def test_detector_end_to_end(micro_profile, tiny_dataset, tiny_test_dataset, shadow_pool):
    detector = BpromDetector(profile=micro_profile, architecture="mlp", seed=0)
    detector.fit(tiny_dataset, tiny_dataset, tiny_test_dataset, shadow_models=shadow_pool)

    clean_model = build_classifier("mlp", tiny_dataset.num_classes, tiny_dataset.image_size, rng=99, name="sus-clean")
    clean_model.fit(tiny_dataset, micro_profile.classifier, rng=100)
    result_clean = detector.inspect(clean_model)
    assert 0.0 <= result_clean.backdoor_score <= 1.0
    assert isinstance(result_clean.is_backdoored, bool)
    assert 0.0 <= result_clean.prompted_accuracy <= 1.0

    attack = build_attack("badnets", target_class=0, seed=7, patch_size=4)
    poisoned = attack.poison(tiny_dataset, poison_rate=0.3, rng=8)
    backdoored_model = build_classifier("mlp", tiny_dataset.num_classes, tiny_dataset.image_size, rng=101, name="sus-bd")
    backdoored_model.fit(poisoned.dataset, micro_profile.classifier, rng=102)
    result_backdoored = detector.inspect(backdoored_model)
    assert 0.0 <= result_backdoored.backdoor_score <= 1.0

    scores = detector.score_models([clean_model, backdoored_model])
    assert scores.shape == (2,)


def test_detector_requires_fit_before_inspect(micro_profile, trained_mlp):
    detector = BpromDetector(profile=micro_profile, architecture="mlp", seed=0)
    with pytest.raises(RuntimeError):
        detector.inspect(trained_mlp)


def test_detector_rejects_empty_shadow_pool(micro_profile, tiny_dataset, tiny_test_dataset):
    detector = BpromDetector(profile=micro_profile, architecture="mlp", seed=0)
    with pytest.raises(ValueError):
        detector.fit(tiny_dataset, tiny_dataset, tiny_test_dataset, shadow_models=[])


def test_subspace_inconsistency_higher_for_backdoored_target_class(
    micro_profile, tiny_dataset, tiny_test_dataset
):
    clean = build_classifier("mlp", tiny_dataset.num_classes, tiny_dataset.image_size, rng=0)
    clean.fit(tiny_dataset, micro_profile.classifier, rng=1)
    attack = build_attack("badnets", target_class=0, seed=2, patch_size=4)
    poisoned = attack.poison(tiny_dataset, poison_rate=0.3, rng=3)
    infected = build_classifier("mlp", tiny_dataset.num_classes, tiny_dataset.image_size, rng=4)
    infected.fit(poisoned.dataset, micro_profile.classifier, rng=5)

    report = subspace_report(infected, tiny_test_dataset)
    assert report.centroids.shape[0] == tiny_dataset.num_classes
    assert report.between_class_distance.shape == (4, 4)
    clean_score = subspace_inconsistency_score(clean, tiny_test_dataset, target_class=0)
    infected_score = subspace_inconsistency_score(infected, tiny_test_dataset, target_class=0)
    assert infected_score > 0.0 and clean_score > 0.0


def test_class_subspace_projection_shapes(trained_mlp, tiny_test_dataset):
    projection = class_subspace_projection(trained_mlp, tiny_test_dataset)
    assert projection["projection"].shape == (len(tiny_test_dataset), 2)
    assert projection["labels"].shape == (len(tiny_test_dataset),)


def test_prompted_accuracy_gap_keys(trained_mlp, tiny_dataset, tiny_test_dataset, micro_profile):
    from repro.prompting import train_prompt_whitebox

    prompted = train_prompt_whitebox(trained_mlp, tiny_dataset, micro_profile.prompt, rng=0)
    gap = prompted_accuracy_gap(prompted, prompted, tiny_test_dataset)
    assert gap["gap"] == pytest.approx(0.0)
    assert set(gap) == {"clean_prompted_accuracy", "infected_prompted_accuracy", "gap"}


def test_meta_feature_projection(trained_mlp, tiny_dataset, tiny_test_dataset, micro_profile):
    from repro.prompting import train_prompt_whitebox

    prompted = train_prompt_whitebox(trained_mlp, tiny_dataset, micro_profile.prompt, rng=0)
    result = meta_feature_projection([prompted, prompted], [0, 1], tiny_test_dataset.images[:4])
    assert result["projection"].shape == (2, 2)
    with pytest.raises(ValueError):
        meta_feature_projection([prompted], [0, 1], tiny_test_dataset.images[:4])
