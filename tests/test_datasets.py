"""Tests for the dataset substrate: containers, synthesis, registry, transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FAST
from repro.datasets import (
    ImageDataset,
    SyntheticImageDistribution,
    available_datasets,
    load_dataset,
    normalize,
    resize_batch,
    to_grayscale,
)
from repro.datasets.registry import build_distribution, get_spec
from repro.datasets.synthetic import SyntheticStyle
from repro.datasets.transforms import pad_to, random_horizontal_flip, random_shift


def test_image_dataset_validates_shapes(rng):
    with pytest.raises(ValueError):
        ImageDataset(rng.random((4, 3, 8)), np.zeros(4, dtype=int))
    with pytest.raises(ValueError):
        ImageDataset(rng.random((4, 3, 8, 8)), np.zeros(5, dtype=int))
    with pytest.raises(ValueError):
        ImageDataset(rng.random((4, 3, 8, 8)), np.array([0, 1, 2, 5]), num_classes=3)


def test_image_dataset_basic_accessors(tiny_dataset):
    assert len(tiny_dataset) == 40
    assert tiny_dataset.num_classes == 4
    assert tiny_dataset.image_shape == (3, 12, 12)
    counts = tiny_dataset.class_counts()
    assert counts.sum() == len(tiny_dataset)
    image, label = tiny_dataset[0]
    assert image.shape == (3, 12, 12)
    assert 0 <= label < 4


def test_dataset_split_and_subset(tiny_dataset):
    split = tiny_dataset.split(0.25, rng=0)
    assert len(split.first) + len(split.second) == len(tiny_dataset)
    assert len(split.first) == 10
    subset = tiny_dataset.subset([0, 1, 2])
    assert len(subset) == 3


def test_sample_fraction_is_stratified(tiny_dataset):
    sampled = tiny_dataset.sample_fraction(0.5, rng=0)
    counts = sampled.class_counts()
    assert np.all(counts == 5)


def test_dataset_batches_cover_all_samples(tiny_dataset):
    seen = 0
    for images, labels in tiny_dataset.batches(batch_size=16, shuffle=True, rng=0):
        assert images.shape[0] == labels.shape[0]
        seen += images.shape[0]
    assert seen == len(tiny_dataset)


def test_dataset_concatenate(tiny_dataset, tiny_test_dataset):
    merged = ImageDataset.concatenate([tiny_dataset, tiny_test_dataset])
    assert len(merged) == len(tiny_dataset) + len(tiny_test_dataset)


def test_synthetic_distribution_is_deterministic():
    style = SyntheticStyle(style_seed=3)
    a = SyntheticImageDistribution(4, 12, 3, style).sample(5, rng=11)
    b = SyntheticImageDistribution(4, 12, 3, style).sample(5, rng=11)
    assert np.allclose(a.images, b.images)
    assert np.array_equal(a.labels, b.labels)


def test_synthetic_classes_are_distinguishable(tiny_distribution):
    """Per-class means should be further apart than within-class spread."""
    data = tiny_distribution.sample(12, rng=3)
    means = np.stack(
        [data.images[data.labels == c].mean(axis=0).ravel() for c in range(4)]
    )
    between = np.linalg.norm(means[0] - means[1])
    within = np.mean(
        np.linalg.norm(
            data.images[data.labels == 0].reshape(12, -1) - means[0], axis=1
        )
    )
    assert between > 0.5 * within


def test_synthetic_pixel_range(tiny_dataset):
    assert tiny_dataset.images.min() >= 0.0
    assert tiny_dataset.images.max() <= 1.0


def test_registry_contains_all_paper_datasets():
    names = available_datasets()
    for expected in ("cifar10", "gtsrb", "stl10", "svhn", "mnist", "cifar100", "tiny_imagenet", "imagenet"):
        assert expected in names


def test_registry_class_capping():
    spec = get_spec("gtsrb")
    assert spec.native_classes == 43
    assert spec.effective_classes(FAST) == FAST.max_classes
    assert get_spec("cifar10").effective_classes(FAST) == 10


def test_load_dataset_is_deterministic_and_sized():
    train_a, test_a = load_dataset("cifar10", FAST, seed=5)
    train_b, _ = load_dataset("cifar10", FAST, seed=5)
    assert np.allclose(train_a.images, train_b.images)
    assert len(train_a) == FAST.train_per_class * 10
    assert len(test_a) == FAST.test_per_class * 10


def test_load_dataset_unknown_name():
    with pytest.raises(KeyError):
        load_dataset("not-a-dataset", FAST)


def test_different_datasets_have_different_domains():
    dist_a = build_distribution("cifar10", FAST)
    dist_b = build_distribution("stl10", FAST)
    assert not np.allclose(dist_a.prototypes[:5], dist_b.prototypes[:5])


def test_resize_batch_shapes_and_identity(rng):
    images = rng.random((2, 3, 8, 8))
    up = resize_batch(images, 16)
    assert up.shape == (2, 3, 16, 16)
    same = resize_batch(images, 8)
    assert np.allclose(same, images)


def test_resize_batch_preserves_constant_images():
    images = np.full((1, 3, 6, 6), 0.37)
    resized = resize_batch(images, 11)
    assert np.allclose(resized, 0.37)


def test_normalize_and_grayscale(rng):
    images = rng.random((2, 3, 4, 4))
    normalised = normalize(images)
    assert normalised.min() >= -1.0 and normalised.max() <= 1.0
    gray = to_grayscale(images)
    assert gray.shape == images.shape
    assert np.allclose(gray[:, 0], gray[:, 1])


def test_random_flip_and_shift_keep_shape(rng):
    images = rng.random((4, 3, 8, 8))
    flipped = random_horizontal_flip(images, probability=1.0, rng=0)
    assert flipped.shape == images.shape
    assert np.allclose(flipped, images[:, :, :, ::-1])
    shifted = random_shift(images, max_shift=2, rng=0)
    assert shifted.shape == images.shape


def test_pad_to_centres_content(rng):
    images = rng.random((1, 3, 4, 4))
    padded = pad_to(images, 8, fill=0.0)
    assert padded.shape == (1, 3, 8, 8)
    assert np.allclose(padded[:, :, 2:6, 2:6], images)
    with pytest.raises(ValueError):
        pad_to(images, 2)
