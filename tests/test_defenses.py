"""Tests for the baseline defenses (input-, dataset- and model-level)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import build_attack
from repro.defenses import available_defenses, build_defense
from repro.defenses.base import triggered_and_clean_split
from repro.defenses.dataset_level import (
    ActivationClusteringDefense,
    ConfusionTrainingDefense,
    FrequencyDefense,
    ScanDefense,
    SpectralSignaturesDefense,
    SpectreDefense,
)
from repro.defenses.input_level import (
    CognitiveDistillationDefense,
    ScaleUpDefense,
    SentiNetDefense,
    StripDefense,
    TeCoDefense,
    TEDDefense,
)
from repro.defenses.model_level import MMBDDefense, MNTDDefense
from repro.defenses.registry import canonical_defense_name


@pytest.fixture(scope="module")
def backdoored_mlp(tiny_dataset, micro_profile):
    """A badnets-poisoned MLP plus its poisoning result (shared across tests)."""
    from repro.models.registry import build_classifier

    attack = build_attack("badnets", target_class=0, seed=0, patch_size=4)
    poisoning = attack.poison(tiny_dataset, poison_rate=0.3, rng=0)
    classifier = build_classifier("mlp", tiny_dataset.num_classes, tiny_dataset.image_size, rng=3)
    classifier.fit(poisoning.dataset, micro_profile.classifier, rng=4)
    return classifier, attack, poisoning


INPUT_DEFENSE_FACTORIES = [
    ("strip", lambda aux: StripDefense(aux, num_overlays=4, rng=0)),
    ("scale_up", lambda aux: ScaleUpDefense(factors=(3.0, 5.0))),
    ("teco", lambda aux: TeCoDefense(severities=(0.1, 0.3), rng=0)),
    ("sentinet", lambda aux: SentiNetDefense(aux, patch_size=4, num_carriers=4, rng=0)),
    ("ted", lambda aux: TEDDefense(aux, neighbours=3)),
    ("cd", lambda aux: CognitiveDistillationDefense(patch_size=4)),
]


@pytest.mark.parametrize("name,factory", INPUT_DEFENSE_FACTORIES, ids=[f[0] for f in INPUT_DEFENSE_FACTORIES])
def test_input_level_defenses_score_shapes(name, factory, backdoored_mlp, tiny_test_dataset):
    classifier, attack, _ = backdoored_mlp
    defense = factory(tiny_test_dataset)
    clean_images, triggered_images = triggered_and_clean_split(
        attack, tiny_test_dataset, max_samples=8, rng=0
    )
    scores = defense.score_inputs(classifier, clean_images)
    assert scores.shape == (clean_images.shape[0],)
    evaluation = defense.evaluate(classifier, clean_images, triggered_images)
    assert 0.0 <= evaluation.auroc <= 1.0
    assert 0.0 <= evaluation.f1 <= 1.0


DATASET_DEFENSE_FACTORIES = [
    ("activation_clustering", lambda: ActivationClusteringDefense(rng=0)),
    ("spectral_signatures", lambda: SpectralSignaturesDefense()),
    ("scan", lambda: ScanDefense(rng=0)),
    ("spectre", lambda: SpectreDefense()),
    ("frequency", lambda: FrequencyDefense()),
    ("confusion_training", lambda: ConfusionTrainingDefense(epochs=3, rng=0)),
]


@pytest.mark.parametrize("name,factory", DATASET_DEFENSE_FACTORIES, ids=[f[0] for f in DATASET_DEFENSE_FACTORIES])
def test_dataset_level_defenses_score_training_set(name, factory, backdoored_mlp):
    classifier, _, poisoning = backdoored_mlp
    defense = factory()
    scores = defense.score_training_samples(classifier, poisoning.dataset)
    assert scores.shape == (len(poisoning.dataset),)
    evaluation = defense.evaluate(classifier, poisoning)
    assert 0.0 <= evaluation.auroc <= 1.0


def test_spectral_signatures_detects_patch_poisoning(backdoored_mlp):
    """A visible patch + label flip should not be anti-correlated with the score.

    On the micro MLP substrate the spectral signal is weak, so the assertion is
    a sanity bound rather than the paper-level detection threshold.
    """
    classifier, _, poisoning = backdoored_mlp
    evaluation = SpectralSignaturesDefense().evaluate(classifier, poisoning)
    assert evaluation.auroc >= 0.3
    assert np.isfinite(evaluation.scores).all()


def test_strip_flags_triggered_inputs(backdoored_mlp, tiny_test_dataset):
    classifier, attack, _ = backdoored_mlp
    defense = StripDefense(tiny_test_dataset, num_overlays=6, rng=0)
    clean_images, triggered_images = triggered_and_clean_split(
        attack, tiny_test_dataset, max_samples=12, rng=0
    )
    evaluation = defense.evaluate(classifier, clean_images, triggered_images)
    assert evaluation.auroc > 0.4  # should not be anti-correlated


def test_mmbd_scores_models(backdoored_mlp, trained_mlp, tiny_test_dataset):
    backdoored_classifier, _, _ = backdoored_mlp
    defense = MMBDDefense(num_probes=32, optimisation_steps=2)
    evaluation = defense.evaluate_models(
        [trained_mlp, backdoored_classifier], [0, 1], tiny_test_dataset, rng=0
    )
    assert 0.0 <= evaluation.auroc <= 1.0
    assert evaluation.scores.shape == (2,)


def test_mntd_requires_fit_and_scores_models(micro_profile, tiny_dataset, trained_mlp):
    defense = MNTDDefense(profile=micro_profile, architecture="mlp", num_queries=4, seed=0)
    with pytest.raises(RuntimeError):
        defense.score_model(trained_mlp, tiny_dataset)
    from repro.core import ShadowModelFactory

    pool = ShadowModelFactory(micro_profile, "mlp", seed=1).build_pool(
        tiny_dataset, num_clean=1, num_backdoor=1
    )
    defense.fit(tiny_dataset, shadow_models=pool)
    score = defense.score_model(trained_mlp, tiny_dataset)
    assert 0.0 <= score <= 1.0


def test_defense_registry_builds_every_defense(tiny_test_dataset):
    for name in available_defenses():
        if name == "mntd":
            continue  # requires an expensive fit; covered above
        defense = build_defense(name, auxiliary_data=tiny_test_dataset, rng=0)
        assert defense is not None


def test_defense_registry_aliases_and_errors(tiny_test_dataset):
    assert canonical_defense_name("AC") == "activation_clustering"
    assert canonical_defense_name("Scale-Up") == "scale_up"
    with pytest.raises(KeyError):
        build_defense("unknown-defense")
    with pytest.raises(ValueError):
        build_defense("strip")  # missing auxiliary data
