"""Tests for the evaluation harness, tables and a fast experiment run."""

from __future__ import annotations

import pytest

from repro.eval.harness import ExperimentContext, bprom_detection_auroc, build_suspicious_pool
from repro.eval.tables import compare_with_paper, format_table, merge_rows
from repro.eval import paper_reference


@pytest.fixture(scope="module")
def context(micro_profile):
    profile = micro_profile.with_overrides(name="micro-eval")
    return ExperimentContext(profile, seed=0)


def test_context_dataset_caching(context):
    first = context.datasets("cifar10")
    second = context.datasets("cifar10")
    assert first[0] is second[0]


def test_reserved_clean_scales_with_fraction(context):
    small = context.reserved_clean("cifar10", 0.01)
    large = context.reserved_clean("cifar10", 0.10)
    assert len(small) < len(large)
    assert small.num_classes == large.num_classes


def test_suspicious_model_cache_and_metadata(context):
    clean_a = context.suspicious_model("cifar10", None, 0, "mlp")
    clean_b = context.suspicious_model("cifar10", None, 0, "mlp")
    assert clean_a is clean_b
    assert not clean_a.is_backdoored
    backdoored = context.suspicious_model("cifar10", "badnets", 0, "mlp")
    assert backdoored.is_backdoored
    assert backdoored.attack_name == "badnets"
    assert 0.0 <= backdoored.attack_success_rate <= 1.0
    assert backdoored.poisoning is not None


def test_build_suspicious_pool_labels(context):
    pool, labels = build_suspicious_pool(
        context, "cifar10", "badnets", architecture="mlp", num_clean=1, num_backdoor=1
    )
    assert len(pool) == 2
    assert labels == [0, 1]


def test_bprom_detection_auroc_outputs(context):
    metrics = bprom_detection_auroc(
        context,
        "cifar10",
        "badnets",
        architecture="mlp",
        num_clean=1,
        num_backdoor=1,
        num_clean_shadows=1,
        num_backdoor_shadows=1,
    )
    for key in ("auroc", "f1", "mean_clean_score", "mean_backdoor_score", "mean_asr"):
        assert key in metrics
    assert 0.0 <= metrics["auroc"] <= 1.0


def test_format_table_and_merge_rows():
    rows = [{"name": "a", "value": 1.234567}, {"name": "b", "value": 2.0}]
    text = format_table(rows, title="demo")
    assert "demo" in text
    assert "1.235" in text
    assert format_table([], title="empty").startswith("empty")
    merged = merge_rows(rows, [{"name": "c", "value": 3.0}])
    assert len(merged) == 3


def test_compare_with_paper():
    rows = compare_with_paper({"badnets": 0.9}, {"badnets": 1.0}, label="cifar10/")
    assert rows[0]["paper"] == 1.0
    assert rows[0]["setting"] == "cifar10/badnets"


def test_paper_reference_tables_are_consistent():
    assert paper_reference.TABLE5_AVERAGE_AUROC["bprom"]["cifar10"] == 1.0
    assert set(paper_reference.TABLE9_POISON_RATE) == {0.05, 0.10, 0.20}
    assert paper_reference.TABLE2_TARGET_CLASSES["cifar10"][1] > paper_reference.TABLE2_TARGET_CLASSES["cifar10"][3]
    # the paper's trend: prompted accuracy decreases with trigger size
    sizes = paper_reference.TABLE3_TRIGGER_SIZE["cifar10_blend"]
    assert sizes[4] > sizes[16]
