"""Tests for the multi-tenant audit gateway.

Acceptance property: gateway verdicts are bit-identical (scores within 1e-9,
identical labels) to routing each model through its tenant's ``AuditService``
by hand, for a mixed catalogue spanning two tenants and two architecture
families — plus routing rules, the shared in-flight budget and the ``stats``
snapshot.
"""

from __future__ import annotations

import copy
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.config import RuntimeConfig
from repro.models.registry import build_classifier
from repro.runtime import AuditGateway, AuditService, DetectorRegistry, TenantProvisioner
from repro.runtime.registry import DetectorSpec


@pytest.fixture(scope="module")
def tenant_specs(micro_profile):
    """Two BPROM tenants spanning two architecture families, plus MNTD."""
    return {
        "vision-cnn": DetectorSpec(
            defense="bprom", profile=micro_profile, architecture="resnet18", seed=0
        ),
        "tabular-mlp": DetectorSpec(
            defense="bprom", profile=micro_profile, architecture="mlp", seed=0
        ),
        "baseline-mntd": DetectorSpec(
            defense="mntd", profile=micro_profile, architecture="mlp", seed=0, num_queries=4
        ),
    }


@pytest.fixture(scope="module")
def vendor_models(micro_profile, tiny_dataset):
    """A mixed vendor catalogue: two models per architecture family."""
    catalogue = {}
    for family_arch, prefix in (("resnet18", "cnn"), ("mlp", "mlp")):
        for index in range(2):
            name = f"vendor-{prefix}-{index}"
            model = build_classifier(
                family_arch,
                tiny_dataset.num_classes,
                image_size=tiny_dataset.image_size,
                rng=500 + index,
                name=name,
            )
            model.fit(tiny_dataset, micro_profile.classifier, rng=600 + index)
            catalogue[name] = model
    return catalogue


@pytest.fixture(scope="module")
def warm_gateway(tenant_specs, micro_profile, tiny_dataset, tiny_test_dataset, tmp_path_factory):
    """A gateway with all three tenants registered over a shared store."""
    runtime = RuntimeConfig(cache_dir=str(tmp_path_factory.mktemp("gateway-store")))
    gateway = AuditGateway(runtime=runtime, max_in_flight=3)
    gateway.register_tenant(
        "vision-cnn", tenant_specs["vision-cnn"], tiny_dataset, tiny_test_dataset, tiny_test_dataset
    )
    gateway.register_tenant(
        "tabular-mlp", tenant_specs["tabular-mlp"], tiny_dataset, tiny_test_dataset, tiny_test_dataset
    )
    gateway.register_tenant("baseline-mntd", tenant_specs["baseline-mntd"], tiny_dataset)
    yield gateway
    gateway.close()


# ---------------------------------------------------------------------------
# routing
# ---------------------------------------------------------------------------

def test_routes_by_architecture_family(warm_gateway, vendor_models):
    assert warm_gateway.route({"architecture": "resnet18"}).tenant_id == "vision-cnn"
    assert warm_gateway.route({"architecture": "mobilenetv2"}).tenant_id == "vision-cnn"
    assert warm_gateway.route({"architecture": "mlp"}).tenant_id == "tabular-mlp"
    assert warm_gateway.route({"family": "cnn"}).tenant_id == "vision-cnn"


def test_routes_by_defense_and_explicit_tenant(warm_gateway):
    assert warm_gateway.route({"defense": "mntd"}).tenant_id == "baseline-mntd"
    assert warm_gateway.route({"tenant": "tabular-mlp"}).tenant_id == "tabular-mlp"
    with pytest.raises(KeyError):
        warm_gateway.route({"tenant": "nobody"})


def test_unroutable_and_ambiguous_submissions_are_rejected(warm_gateway):
    with pytest.raises(KeyError):  # no transformer tenant registered
        warm_gateway.route({"architecture": "vit"})
    with pytest.raises(ValueError, match="ambiguous"):  # two bprom tenants match
        warm_gateway.route({})


def test_route_requires_registered_tenants(micro_profile):
    gateway = AuditGateway(runtime=RuntimeConfig())
    with pytest.raises(KeyError, match="no tenants"):
        gateway.route({"architecture": "mlp"})


# ---------------------------------------------------------------------------
# verdict equivalence (the acceptance criterion)
# ---------------------------------------------------------------------------

def test_gateway_verdicts_match_per_tenant_audit_services(warm_gateway, vendor_models):
    """Mixed two-family catalogue: the merged stream must agree with two
    by-hand per-tenant ``AuditService.audit`` runs to <= 1e-9, identical labels."""
    submissions = [(name, model) for name, model in vendor_models.items()]
    verdicts = {verdict.name: verdict for verdict in warm_gateway.stream(submissions)}
    assert set(verdicts) == set(vendor_models)

    tenants = warm_gateway.tenants
    for tenant_id, prefix in (("vision-cnn", "vendor-cnn"), ("tabular-mlp", "vendor-mlp")):
        service = AuditService(tenants[tenant_id].entry.detector)
        group = {name: model for name, model in vendor_models.items() if name.startswith(prefix)}
        for reference in service.audit(group):
            merged = verdicts[reference.name]
            assert merged.tenant == tenant_id
            assert abs(merged.backdoor_score - reference.backdoor_score) <= 1e-9
            assert merged.is_backdoored == reference.is_backdoored
            assert abs(merged.prompted_accuracy - reference.prompted_accuracy) <= 1e-9
            assert merged.query_count == reference.query_count
            assert merged.query_calls == reference.query_calls


def test_gateway_matches_parallel_audit_too(
    tenant_specs, vendor_models, tiny_dataset, tiny_test_dataset, tmp_path
):
    """Same equivalence under a parallel runtime and interleaved submission."""
    runtime = RuntimeConfig(workers=2, cache_dir=str(tmp_path))
    with AuditGateway(runtime=runtime, max_in_flight=2) as gateway:
        gateway.register_tenant(
            "vision-cnn", tenant_specs["vision-cnn"], tiny_dataset, tiny_test_dataset, tiny_test_dataset
        )
        gateway.register_tenant(
            "tabular-mlp", tenant_specs["tabular-mlp"], tiny_dataset, tiny_test_dataset, tiny_test_dataset
        )
        # interleave families so routing alternates tenants
        names = sorted(vendor_models, key=lambda name: name[::-1])
        verdicts = {
            verdict.name: verdict
            for verdict in gateway.stream((name, vendor_models[name]) for name in names)
        }
        tenants = gateway.tenants
        for tenant_id, prefix in (("vision-cnn", "vendor-cnn"), ("tabular-mlp", "vendor-mlp")):
            service = AuditService(tenants[tenant_id].entry.detector)
            group = {k: m for k, m in vendor_models.items() if k.startswith(prefix)}
            for reference in service.audit(group):
                assert abs(verdicts[reference.name].backdoor_score - reference.backdoor_score) <= 1e-9
                assert verdicts[reference.name].is_backdoored == reference.is_backdoored


def test_mntd_tenant_verdicts_match_direct_scoring(warm_gateway, vendor_models, tiny_dataset):
    defense = warm_gateway.tenants["baseline-mntd"].entry.detector
    model = vendor_models["vendor-mlp-0"]
    [verdict] = list(
        warm_gateway.stream([("suspect", model, {"defense": "mntd"})])
    )
    assert verdict.tenant == "baseline-mntd"
    expected = defense.score_model(model, tiny_dataset)
    assert verdict.backdoor_score == expected
    assert verdict.is_backdoored == (expected >= defense.threshold)


# ---------------------------------------------------------------------------
# submission surface and accounting
# ---------------------------------------------------------------------------

def test_submit_and_as_completed_merge_tenant_streams(warm_gateway, vendor_models):
    jobs = [
        warm_gateway.submit(f"resub-{name}", model)  # routed via model.architecture
        for name, model in vendor_models.items()
    ]
    assert all(job.key.startswith("resub-") for job in jobs)
    harvested = {verdict.name: verdict.tenant for verdict in warm_gateway.as_completed()}
    assert set(harvested) == {f"resub-{name}" for name in vendor_models}
    assert harvested["resub-vendor-cnn-0"] == "vision-cnn"
    assert harvested["resub-vendor-mlp-0"] == "tabular-mlp"
    # drained: a fresh as_completed ends immediately
    assert list(warm_gateway.as_completed()) == []
    assert warm_gateway.in_flight == 0


def test_stats_snapshot_reports_tenants_registry_and_store(warm_gateway, vendor_models):
    stats = warm_gateway.stats()
    assert set(stats["tenants"]) == {"vision-cnn", "tabular-mlp", "baseline-mntd"}
    cnn = stats["tenants"]["vision-cnn"]
    assert cnn["family"] == "cnn" and cnn["defense"] == "bprom"
    # the streams above audited two models per bprom tenant (plus resubmits)
    assert cnn["accepted"] + cnn["rejected"] >= 2
    assert cnn["query_count"] > 0 and cnn["query_calls"] > 0
    mntd = stats["tenants"]["baseline-mntd"]
    assert mntd["query_count"] == 0  # MNTD queries are not black-box prompting
    # every tenant reports its precision tier so fleet dashboards can tell
    # a float32 tenant from the float64 reference tier at a glance
    assert all(t["precision"] == "float64" for t in stats["tenants"].values())
    assert stats["registry"]["fits"] == 3  # one fit per tenant, cold store
    assert stats["registry"]["evictions"] == 0
    assert isinstance(stats["store"], dict) and stats["store"]
    assert stats["in_flight"] == 0
    assert stats["max_in_flight"] == 3


def test_shared_budget_caps_concurrent_work(tenant_specs, tiny_dataset, tiny_test_dataset, tmp_path):
    runtime = RuntimeConfig(cache_dir=str(tmp_path))
    with AuditGateway(runtime=runtime, max_in_flight=1) as gateway:
        assert gateway.max_in_flight == 1
    with pytest.raises(ValueError):
        AuditGateway(runtime=runtime, max_in_flight=0)


def test_duplicate_tenant_registration_is_rejected(tenant_specs, tiny_dataset, tmp_path):
    gateway = AuditGateway(runtime=RuntimeConfig(cache_dir=str(tmp_path)))
    gateway.register_tenant("baseline-mntd", tenant_specs["baseline-mntd"], tiny_dataset)
    with pytest.raises(ValueError, match="already registered"):
        gateway.register_tenant("baseline-mntd", tenant_specs["baseline-mntd"], tiny_dataset)
    gateway.close()


def test_gateway_reuses_registry_across_instances(
    tenant_specs, tiny_dataset, tiny_test_dataset, tmp_path
):
    """A second gateway process over the same store stands its tenants up
    with zero training (the registry acceptance property, gateway-shaped)."""
    runtime = RuntimeConfig(cache_dir=str(tmp_path))
    with AuditGateway(runtime=runtime) as first:
        first.register_tenant(
            "tabular-mlp", tenant_specs["tabular-mlp"], tiny_dataset, tiny_test_dataset, tiny_test_dataset
        )
        first.register_tenant("baseline-mntd", tenant_specs["baseline-mntd"], tiny_dataset)
    registry = DetectorRegistry(runtime=runtime)
    with AuditGateway(registry=registry) as second:
        mlp = second.register_tenant(
            "tabular-mlp", tenant_specs["tabular-mlp"], tiny_dataset, tiny_test_dataset, tiny_test_dataset
        )
        mntd = second.register_tenant("baseline-mntd", tenant_specs["baseline-mntd"], tiny_dataset)
        assert mlp.entry.source == "store" and not mlp.entry.trained
        assert mntd.entry.source == "store" and not mntd.entry.trained
        assert registry.fits == 0


def test_stream_delivers_harvested_verdicts_before_routing_errors(warm_gateway, vendor_models):
    """An unroutable backlog entry must not swallow verdicts already computed
    (and counted): the stream yields them first, then raises."""
    model = vendor_models["vendor-mlp-0"]
    submissions = [
        ("good", model),
        ("bad", model, {"architecture": "vit"}),  # no transformer tenant
    ]
    received = []
    with pytest.raises(KeyError):
        for verdict in warm_gateway.stream(submissions):
            received.append(verdict.name)
    assert received == ["good"]
    assert warm_gateway.in_flight == 0


def test_failed_job_is_reaped_and_other_verdicts_stay_harvestable(warm_gateway, vendor_models):
    """A failing audit (e.g. a vendor endpoint raising) must re-raise to the
    consumer without leaking its job handle in the tenant service; jobs that
    completed meanwhile remain harvestable via as_completed()."""
    model = vendor_models["vendor-mlp-0"]

    def exploding_query(images):
        raise RuntimeError("vendor endpoint down")

    warm_gateway.submit("fine", model)
    warm_gateway.submit("boom", model, query_function=exploding_query)
    harvested = []
    with pytest.raises(RuntimeError, match="endpoint down"):
        for verdict in warm_gateway.as_completed():
            harvested.append(verdict.name)
    # the failed job was reaped from its tenant's retained queue ...
    assert warm_gateway.tenants["tabular-mlp"].service._jobs == {}
    # ... and whatever was not yielded before the error is still recoverable
    remaining = [verdict.name for verdict in warm_gateway.as_completed()]
    assert sorted(harvested + remaining) == ["fine"]
    assert warm_gateway.in_flight == 0


def test_stream_consumes_submissions_lazily(warm_gateway, vendor_models):
    """stream() must not materialise the whole submissions iterable up front:
    a generator loading models on demand streams in bounded memory."""
    model = vendor_models["vendor-mlp-0"]
    pulled = []

    def entries():
        for index in range(5):
            pulled.append(index)
            yield (f"lazy-{index}", model)

    stream = warm_gateway.stream(entries())
    first = next(stream)
    assert first.name == "lazy-0"
    assert len(pulled) <= 2  # at most one entry pulled ahead of the budget
    assert len(list(stream)) == 4


def test_mntd_tenant_warns_on_ignored_query_function(warm_gateway, vendor_models):
    model = vendor_models["vendor-mlp-0"]
    with pytest.warns(UserWarning, match="MNTD tenant ignores"):
        verdicts = list(
            warm_gateway.stream(
                [("wrapped", model, {"defense": "mntd"})],
                query_functions={"wrapped": model.predict_proba},
            )
        )
    assert verdicts[0].tenant == "baseline-mntd"


# ---------------------------------------------------------------------------
# worker-pool backends (the tentpole: process pools, bit-identical verdicts)
# ---------------------------------------------------------------------------

def test_process_backend_verdicts_bit_identical_to_thread(
    tenant_specs, vendor_models, tiny_dataset, tiny_test_dataset, tmp_path
):
    """The same catalogue through a thread-pool and a process-pool gateway
    over one warm store must produce *exactly* equal verdicts — the process
    workers hydrate the same fitted artifact and the per-key seed derivation
    is shared, so any drift is a real bug, not noise."""
    submissions = [
        (name, model) for name, model in vendor_models.items()
        if name.startswith("vendor-mlp")
    ]
    results = {}
    for backend in ("thread", "process"):
        runtime = RuntimeConfig(
            workers=2, cache_dir=str(tmp_path), gateway_backend=backend
        )
        with AuditGateway(runtime=runtime) as gateway:
            gateway.register_tenant(
                "tabular-mlp", tenant_specs["tabular-mlp"],
                tiny_dataset, tiny_test_dataset, tiny_test_dataset,
            )
            assert gateway.worker_pool.backend == backend  # no silent fallback
            results[backend] = {
                verdict.name: verdict
                for verdict in gateway.stream(
                    (name, copy.deepcopy(model)) for name, model in submissions
                )
            }
            pool_stats = gateway.stats()["worker_pool"]
            assert pool_stats["backend"] == backend
            assert pool_stats["tasks"] == len(submissions)
    assert set(results["thread"]) == set(results["process"]) == {
        name for name, _ in submissions
    }
    for name, thread_verdict in results["thread"].items():
        process_verdict = results["process"][name]
        assert process_verdict.backdoor_score == thread_verdict.backdoor_score, name
        assert process_verdict.is_backdoored == thread_verdict.is_backdoored, name
        assert process_verdict.prompted_accuracy == thread_verdict.prompted_accuracy
        assert process_verdict.query_count == thread_verdict.query_count, name
        assert process_verdict.query_calls == thread_verdict.query_calls, name


def test_process_backend_without_store_falls_back_to_thread():
    """Process workers hydrate detectors from the shared store; with no store
    there is nothing to hydrate from, so the gateway must warn and degrade
    rather than refit inside workers."""
    with pytest.warns(UserWarning, match="falling back to the thread backend"):
        gateway = AuditGateway(runtime=RuntimeConfig(gateway_backend="process"))
    assert gateway.worker_pool.backend == "thread"
    gateway.close()


# ---------------------------------------------------------------------------
# tenant auto-provisioning
# ---------------------------------------------------------------------------

def _provisioner(micro_profile, tiny_dataset, tiny_test_dataset) -> TenantProvisioner:
    return TenantProvisioner(
        reserved_clean=tiny_dataset,
        target_train=tiny_test_dataset,
        target_test=tiny_test_dataset,
        template=DetectorSpec(
            defense="bprom", profile=micro_profile, architecture="mlp", seed=0
        ),
    )


def test_first_touch_submission_provisions_a_tenant(
    micro_profile, vendor_models, tiny_dataset, tiny_test_dataset, tmp_path
):
    runtime = RuntimeConfig(cache_dir=str(tmp_path))
    provisioner = _provisioner(micro_profile, tiny_dataset, tiny_test_dataset)
    model = vendor_models["vendor-mlp-0"]
    with AuditGateway(runtime=runtime, provisioner=provisioner) as gateway:
        [verdict] = list(gateway.stream([("first-touch", model)]))
        assert verdict.tenant == "auto-bprom-mlp"
        stats = gateway.stats()
        assert stats["tenants"]["auto-bprom-mlp"]["provisioned"] is True
        assert gateway.registry.fits == 1
        # the second submission routes to the standing tenant: no second fit
        [again] = list(gateway.stream([("second-touch", model)]))
        assert again.tenant == "auto-bprom-mlp"
        assert gateway.registry.fits == 1
        # an explicit pin on an unknown tenant is a caller error, not a
        # provisioning trigger
        with pytest.raises(KeyError, match="unknown tenant"):
            gateway.submit("pinned", model, metadata={"tenant": "nobody"})


def test_provisioning_race_in_threads_fits_exactly_once(
    micro_profile, vendor_models, tiny_dataset, tiny_test_dataset, tmp_path
):
    """Two racing gateways (one store) provisioning the same first-touch spec
    must perform exactly one fit between them — the registry's advisory lock
    single-flights the fit, and the loser warm-loads."""
    runtime = RuntimeConfig(cache_dir=str(tmp_path))
    model = vendor_models["vendor-mlp-0"]
    barrier = threading.Barrier(2)
    outcomes = []

    def provision_and_audit() -> None:
        registry = DetectorRegistry(runtime=runtime)
        provisioner = _provisioner(micro_profile, tiny_dataset, tiny_test_dataset)
        with AuditGateway(registry=registry, provisioner=provisioner) as gateway:
            barrier.wait()
            [verdict] = list(gateway.stream([("probe", copy.deepcopy(model))]))
        outcomes.append((registry.fits, verdict.backdoor_score))

    threads = [threading.Thread(target=provision_and_audit) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert sorted(fits for fits, _ in outcomes) == [0, 1], outcomes
    scores = {score for _, score in outcomes}
    assert len(scores) == 1  # both serve from the one fitted artifact


def _provision_in_subprocess(args):
    """Module-level so a fork-start ProcessPoolExecutor can run it: one whole
    gateway process provisioning the same spec as its sibling."""
    cache_dir, profile, reserved, target, model = args
    runtime = RuntimeConfig(cache_dir=cache_dir)
    registry = DetectorRegistry(runtime=runtime)
    provisioner = TenantProvisioner(
        reserved_clean=reserved,
        target_train=target,
        target_test=target,
        template=DetectorSpec(
            defense="bprom", profile=profile, architecture="mlp", seed=0
        ),
    )
    with AuditGateway(registry=registry, provisioner=provisioner) as gateway:
        [verdict] = list(gateway.stream([("probe", model)]))
    return registry.fits, verdict.backdoor_score


def test_provisioning_race_across_processes_fits_exactly_once(
    micro_profile, vendor_models, tiny_dataset, tiny_test_dataset, tmp_path
):
    """Same exactly-one-fit property with the racers as whole OS processes:
    nothing but the store and its advisory locks is shared."""
    args = (
        str(tmp_path),
        micro_profile,
        tiny_dataset,
        tiny_test_dataset,
        vendor_models["vendor-mlp-0"],
    )
    with ProcessPoolExecutor(max_workers=2) as pool:
        outcomes = list(pool.map(_provision_in_subprocess, [args, args]))
    assert sum(fits for fits, _ in outcomes) == 1, outcomes
    scores = {score for _, score in outcomes}
    assert len(scores) == 1
