"""Tests for the from-scratch classic-ML components."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import (
    CMAES,
    KMeans,
    LogisticRegression,
    PCA,
    RandomForestClassifier,
    RandomSearch,
    SPSA,
    auroc,
    f1_score,
    precision_recall,
    roc_curve,
)
from repro.ml.cma_es import build_blackbox_optimizer
from repro.ml.metrics import best_f1_from_scores, confusion_counts, f1_from_scores
from repro.ml.stats import (
    gram_matrix_features,
    mahalanobis_scores,
    median_absolute_deviation,
    spectral_scores,
    top_singular_vector,
    whiten,
)
from repro.ml.tree import DecisionTreeClassifier


# -- metrics -------------------------------------------------------------------

def test_auroc_perfect_and_inverted():
    labels = np.array([0, 0, 1, 1])
    assert auroc(np.array([0.1, 0.2, 0.8, 0.9]), labels) == 1.0
    assert auroc(np.array([0.9, 0.8, 0.2, 0.1]), labels) == 0.0
    assert auroc(np.array([0.5, 0.5, 0.5, 0.5]), labels) == 0.5


def test_auroc_handles_ties_and_degenerate_labels():
    labels = np.array([0, 1, 0, 1])
    scores = np.array([0.3, 0.3, 0.1, 0.9])
    value = auroc(scores, labels)
    assert 0.5 < value <= 1.0
    assert auroc(np.array([0.1, 0.2]), np.array([1, 1])) == 0.5


def test_auroc_validates_inputs():
    with pytest.raises(ValueError):
        auroc(np.array([0.1, 0.2]), np.array([0, 2]))
    with pytest.raises(ValueError):
        auroc(np.array([]), np.array([]))


def test_roc_curve_endpoints():
    labels = np.array([0, 1, 0, 1, 1])
    scores = np.array([0.1, 0.9, 0.4, 0.8, 0.3])
    fpr, tpr, thresholds = roc_curve(scores, labels)
    assert fpr[0] == 0.0 and tpr[0] == 0.0
    assert fpr[-1] == pytest.approx(1.0)
    assert tpr[-1] == pytest.approx(1.0)
    assert len(fpr) == len(tpr) == len(thresholds)


def test_roc_curve_single_class_returns_chance_diagonal():
    """Single-class labels follow auroc's 0.5 degenerate-split convention."""
    for labels in (np.zeros(4, dtype=int), np.ones(4, dtype=int)):
        scores = np.array([0.1, 0.4, 0.2, 0.9])
        fpr, tpr, thresholds = roc_curve(scores, labels)
        np.testing.assert_array_equal(fpr, [0.0, 1.0])
        np.testing.assert_array_equal(tpr, [0.0, 1.0])
        assert thresholds[0] == np.inf
        # trapezoid area under the diagonal matches auroc's convention
        # (np.trapz was renamed np.trapezoid in numpy 2.0)
        trapezoid = getattr(np, "trapezoid", getattr(np, "trapz", None))
        assert float(trapezoid(tpr, fpr)) == pytest.approx(0.5)
        assert auroc(scores, labels) == 0.5


def test_f1_and_precision_recall():
    predictions = np.array([1, 1, 0, 0, 1])
    labels = np.array([1, 0, 0, 1, 1])
    precision, recall = precision_recall(predictions, labels)
    assert precision == pytest.approx(2 / 3)
    assert recall == pytest.approx(2 / 3)
    assert f1_score(predictions, labels) == pytest.approx(2 / 3)
    tp, fp, tn, fn = confusion_counts(predictions, labels)
    assert (tp, fp, tn, fn) == (2, 1, 1, 1)


def test_f1_from_scores_threshold_behaviour():
    labels = np.array([0, 0, 1, 1])
    scores = np.array([0.1, 0.4, 0.6, 0.9])
    assert f1_from_scores(scores, labels, threshold=0.5) == 1.0
    assert best_f1_from_scores(np.array([0.9, 0.8, 0.2, 0.1]), labels) > 0.0


# -- trees and forests --------------------------------------------------------------

def _separable_data(rng, n=60):
    x0 = rng.normal(loc=-2.0, size=(n // 2, 3))
    x1 = rng.normal(loc=2.0, size=(n // 2, 3))
    features = np.vstack([x0, x1])
    labels = np.array([0] * (n // 2) + [1] * (n // 2))
    return features, labels


def test_decision_tree_fits_separable_data(rng):
    features, labels = _separable_data(rng)
    tree = DecisionTreeClassifier(max_depth=4, rng=0).fit(features, labels)
    assert np.mean(tree.predict(features) == labels) > 0.95
    assert tree.depth() >= 1
    proba = tree.predict_proba(features)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_decision_tree_input_validation(rng):
    tree = DecisionTreeClassifier()
    with pytest.raises(ValueError):
        tree.fit(np.zeros((3,)), np.zeros(3, dtype=int))
    with pytest.raises(RuntimeError):
        DecisionTreeClassifier().predict(np.zeros((2, 3)))


def test_random_forest_accuracy_and_probabilities(rng):
    features, labels = _separable_data(rng, n=80)
    forest = RandomForestClassifier(n_estimators=15, max_depth=4, rng=0).fit(features, labels)
    assert forest.score(features, labels) > 0.95
    proba = forest.predict_proba(features)
    assert proba.shape == (80, 2)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_random_forest_rejects_bad_parameters():
    with pytest.raises(ValueError):
        RandomForestClassifier(n_estimators=0)


def test_logistic_regression_learns_linear_boundary(rng):
    features, labels = _separable_data(rng, n=100)
    model = LogisticRegression(iterations=300, rng=0).fit(features, labels)
    assert model.score(features, labels) > 0.95
    proba = model.predict_proba(features)
    assert proba.min() >= 0.0 and proba.max() <= 1.0


def test_kmeans_recovers_two_blobs(rng):
    features, labels = _separable_data(rng, n=60)
    clusters = KMeans(n_clusters=2, rng=0).fit_predict(features)
    # clusters should align with the blobs up to permutation
    agreement = max(
        np.mean(clusters == labels), np.mean(clusters == 1 - labels)
    )
    assert agreement > 0.95


def test_pca_recovers_dominant_direction(rng):
    direction = np.array([1.0, 0.0, 0.0])
    data = rng.normal(size=(200, 1)) * 5 * direction + rng.normal(scale=0.1, size=(200, 3))
    pca = PCA(n_components=2).fit(data)
    assert abs(pca.components_[0] @ direction) > 0.99
    transformed = pca.transform(data)
    assert transformed.shape == (200, 2)
    reconstructed = pca.inverse_transform(transformed)
    assert reconstructed.shape == data.shape
    assert pca.explained_variance_ratio_[0] > 0.9


# -- optimisers ------------------------------------------------------------------------

QUADRATIC_TARGET = np.array([1.0, -2.0, 0.5, 3.0])


def _quadratic(x):
    return float(np.sum((x - QUADRATIC_TARGET) ** 2))


@pytest.mark.parametrize(
    "optimizer",
    [
        CMAES(iterations=60, population=8, sigma=0.5, rng=0),
        SPSA(iterations=400, learning_rate=0.3, perturbation=0.1, rng=0),
        RandomSearch(iterations=400, sigma=0.5, rng=0),
    ],
    ids=["cmaes", "spsa", "random"],
)
def test_blackbox_optimizers_minimise_quadratic(optimizer):
    result = optimizer.minimize(_quadratic, np.zeros(4))
    assert result.best_value < _quadratic(np.zeros(4))
    assert result.best_value < 2.0
    assert result.evaluations > 0
    assert len(result.history) > 1
    assert result.history[-1] <= result.history[0]


def test_blackbox_optimizer_factory():
    assert isinstance(build_blackbox_optimizer("cma-es", 10), CMAES)
    assert isinstance(build_blackbox_optimizer("spsa", 10), SPSA)
    assert isinstance(build_blackbox_optimizer("random", 10), RandomSearch)
    with pytest.raises(ValueError):
        build_blackbox_optimizer("newton", 10)


# -- stats helpers ---------------------------------------------------------------------

def test_spectral_scores_flag_outlier_direction(rng):
    inliers = rng.normal(size=(50, 4))
    outliers = rng.normal(size=(5, 4)) + np.array([8.0, 0, 0, 0])
    data = np.vstack([inliers, outliers])
    scores = spectral_scores(data)
    assert scores[-5:].mean() > scores[:50].mean()
    direction = top_singular_vector(data)
    assert abs(direction[0]) > 0.8


def test_whiten_produces_identity_covariance(rng):
    data = rng.normal(size=(300, 3)) @ np.array([[2.0, 0, 0], [0.5, 1.0, 0], [0, 0, 0.2]])
    whitened, _, _ = whiten(data)
    covariance = np.cov(whitened.T)
    assert np.allclose(covariance, np.eye(3), atol=0.2)


def test_mad_and_mahalanobis(rng):
    values = rng.normal(size=500)
    mad = median_absolute_deviation(values)
    assert 0.7 < mad < 1.3
    data = rng.normal(size=(100, 3))
    scores = mahalanobis_scores(data)
    assert scores.shape == (100,)
    assert np.all(scores >= 0)


def test_gram_matrix_features_shape(rng):
    features = rng.normal(size=(20, 8))
    grams = gram_matrix_features(features, orders=(1, 2))
    assert grams.shape == (20, 4)
