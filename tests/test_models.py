"""Tests for the model zoo and the ImageClassifier wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.models import (
    ImageClassifier,
    available_architectures,
    build_classifier,
    build_model,
)

ARCHITECTURES = ["resnet18", "mobilenetv2", "mobilevit", "mlp"]


@pytest.mark.parametrize("architecture", ARCHITECTURES)
def test_model_forward_backward_shapes(architecture, rng):
    model = build_model(architecture, num_classes=4, image_size=12, rng=0)
    x = rng.random((3, 3, 12, 12))
    logits = model(x)
    assert logits.shape == (3, 4)
    grad = model.backward(np.ones_like(logits))
    assert grad.shape == x.shape


@pytest.mark.parametrize("architecture", ARCHITECTURES)
def test_model_features_shape(architecture, rng):
    model = build_model(architecture, num_classes=4, image_size=12, rng=0)
    features = model.features(rng.random((5, 3, 12, 12)))
    assert features.shape == (5, model.feature_dim)


@pytest.mark.parametrize("architecture", ARCHITECTURES)
def test_model_training_reduces_loss(architecture, tiny_dataset):
    classifier = build_classifier(architecture, tiny_dataset.num_classes, 12, rng=0)
    history = classifier.fit(
        tiny_dataset, TrainingConfig(epochs=4, batch_size=16, learning_rate=1e-2), rng=1
    )
    assert history.losses[-1] < history.losses[0]
    assert 0.0 <= history.final_train_accuracy <= 1.0


def test_registry_aliases_map_to_families():
    assert type(build_model("resnet", 3, 12)).__name__ == "TinyResNet"
    assert type(build_model("swin", 3, 12)).__name__ == "TinyViT"
    assert type(build_model("mobilenet", 3, 12)).__name__ == "TinyMobileNet"
    with pytest.raises(ValueError):
        build_model("alexnet", 3, 12)
    assert "resnet18" in available_architectures()


def test_classifier_predictions_are_consistent(trained_mlp, tiny_test_dataset):
    proba = trained_mlp.predict_proba(tiny_test_dataset.images)
    assert proba.shape == (len(tiny_test_dataset), tiny_test_dataset.num_classes)
    assert np.allclose(proba.sum(axis=1), 1.0)
    predictions = trained_mlp.predict(tiny_test_dataset.images)
    assert np.array_equal(predictions, np.argmax(proba, axis=1))
    accuracy = trained_mlp.evaluate(tiny_test_dataset)
    assert accuracy > 0.5  # the tiny task is learnable


def test_classifier_evaluate_attack_success(trained_mlp, tiny_test_dataset):
    target = 0
    asr_all = trained_mlp.evaluate_attack_success(tiny_test_dataset.images, target)
    asr_excluding = trained_mlp.evaluate_attack_success(
        tiny_test_dataset.images, target, tiny_test_dataset.labels
    )
    assert 0.0 <= asr_all <= 1.0
    assert 0.0 <= asr_excluding <= 1.0


def test_classifier_rejects_unknown_optimizer(tiny_dataset):
    classifier = build_classifier("mlp", tiny_dataset.num_classes, 12, rng=0)
    with pytest.raises(ValueError):
        classifier.fit(tiny_dataset, TrainingConfig(epochs=1, optimizer="lbfgs"))


def test_training_history_val_accuracy(tiny_dataset, tiny_test_dataset):
    classifier = build_classifier("mlp", tiny_dataset.num_classes, 12, rng=0)
    history = classifier.fit(
        tiny_dataset,
        TrainingConfig(epochs=2, batch_size=16, learning_rate=1e-2),
        rng=0,
        val_dataset=tiny_test_dataset,
    )
    assert len(history.val_accuracies) == 2


def test_classifier_batched_prediction_matches_single_batch(trained_mlp, tiny_test_dataset):
    full = trained_mlp.predict_logits(tiny_test_dataset.images, batch_size=1000)
    chunked = trained_mlp.predict_logits(tiny_test_dataset.images, batch_size=7)
    assert np.allclose(full, chunked)


def test_image_classifier_wraps_any_module(rng):
    from repro.models.mlp import MLPNet

    model = MLPNet(num_classes=3, input_dim=3 * 12 * 12, rng=0)
    classifier = ImageClassifier(model, num_classes=3, name="custom")
    logits = classifier.predict_logits(rng.random((2, 3, 12, 12)))
    assert logits.shape == (2, 3)
