"""Unit tests for the numpy NN framework: gradients, shapes, optimisers, losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.functional import (
    accuracy,
    col2im,
    im2col,
    log_softmax,
    one_hot,
    softmax,
)


def numerical_input_gradient_check(module, x, rng, tolerance=1e-4, probes=4):
    """Compare analytic input gradients against central finite differences."""
    output = module(x)
    upstream = rng.normal(size=output.shape)
    analytic = module.backward(upstream)
    eps = 1e-5
    for _ in range(probes):
        index = tuple(int(rng.integers(0, s)) for s in x.shape)
        plus = x.copy()
        plus[index] += eps
        minus = x.copy()
        minus[index] -= eps
        numeric = (float(np.sum(module(plus) * upstream)) - float(np.sum(module(minus) * upstream))) / (2 * eps)
        assert abs(analytic[index] - numeric) < tolerance * (1 + abs(numeric))


LAYER_CASES = [
    ("linear", lambda: nn.Linear(6, 4, rng=1), (3, 6)),
    ("linear-3d", lambda: nn.Linear(6, 4, rng=1), (2, 5, 6)),
    ("conv", lambda: nn.Conv2d(3, 4, 3, padding=1, rng=1), (2, 3, 8, 8)),
    ("conv-stride", lambda: nn.Conv2d(3, 4, 3, stride=2, padding=1, rng=1), (2, 3, 8, 8)),
    ("conv-depthwise", lambda: nn.Conv2d(4, 4, 3, padding=1, groups=4, rng=1), (2, 4, 6, 6)),
    ("conv-grouped", lambda: nn.Conv2d(4, 6, 3, stride=2, padding=1, groups=2, rng=1), (2, 4, 8, 8)),
    ("bn2d", lambda: nn.BatchNorm2d(3), (4, 3, 5, 5)),
    ("bn1d", lambda: nn.BatchNorm1d(6), (8, 6)),
    ("layernorm", lambda: nn.LayerNorm(8), (2, 5, 8)),
    ("relu", lambda: nn.ReLU(), (3, 4, 5)),
    ("leaky", lambda: nn.LeakyReLU(0.1), (3, 4, 5)),
    ("gelu", lambda: nn.GELU(), (3, 4, 5)),
    ("sigmoid", lambda: nn.Sigmoid(), (3, 4)),
    ("tanh", lambda: nn.Tanh(), (3, 4)),
    ("maxpool", lambda: nn.MaxPool2d(2), (2, 3, 8, 8)),
    ("avgpool", lambda: nn.AvgPool2d(2), (2, 3, 8, 8)),
    ("gap", lambda: nn.GlobalAvgPool2d(), (2, 3, 8, 8)),
    ("flatten", lambda: nn.Flatten(), (2, 3, 4, 4)),
    ("attention", lambda: nn.MultiHeadSelfAttention(8, 2, rng=1), (2, 5, 8)),
    ("patchembed", lambda: nn.PatchEmbedding(8, 4, 3, 8, rng=1), (2, 3, 8, 8)),
]


@pytest.mark.parametrize("name,layer_factory,shape", LAYER_CASES, ids=[c[0] for c in LAYER_CASES])
def test_layer_gradient_matches_finite_differences(name, layer_factory, shape, rng):
    layer = layer_factory()
    x = rng.normal(size=shape)
    numerical_input_gradient_check(layer, x, rng)


@pytest.mark.parametrize("name,layer_factory,shape", LAYER_CASES, ids=[c[0] for c in LAYER_CASES])
def test_layer_backward_shape_matches_input(name, layer_factory, shape, rng):
    layer = layer_factory()
    x = rng.normal(size=shape)
    out = layer(x)
    grad_in = layer.backward(rng.normal(size=out.shape))
    assert grad_in.shape == x.shape


def test_linear_parameter_gradients_accumulate(rng):
    layer = nn.Linear(4, 3, rng=0)
    x = rng.normal(size=(5, 4))
    layer.zero_grad()
    out = layer(x)
    layer.backward(np.ones_like(out))
    first = layer.weight.grad.copy()
    layer(x)
    layer.backward(np.ones_like(out))
    assert np.allclose(layer.weight.grad, 2 * first)


def test_conv_rejects_bad_group_configuration():
    with pytest.raises(ValueError):
        nn.Conv2d(3, 4, 3, groups=2)


def test_batchnorm_updates_running_statistics(rng):
    bn = nn.BatchNorm2d(3)
    x = rng.normal(2.0, 3.0, size=(16, 3, 4, 4))
    bn.train()
    bn(x)
    assert not np.allclose(bn.get_buffer("running_mean"), 0.0)
    bn.eval()
    out_eval = bn(x)
    assert out_eval.shape == x.shape


def test_dropout_identity_in_eval_mode(rng):
    dropout = nn.Dropout(0.5, rng=0)
    x = rng.normal(size=(10, 10))
    dropout.eval()
    assert np.allclose(dropout(x), x)
    dropout.train()
    dropped = dropout(x)
    assert not np.allclose(dropped, x)


def test_sequential_runs_layers_in_order(rng):
    model = nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
    x = rng.normal(size=(3, 4))
    out = model(x)
    assert out.shape == (3, 2)
    grad = model.backward(np.ones_like(out))
    assert grad.shape == x.shape
    assert len(model) == 3


def test_module_freeze_blocks_optimizer_updates(rng):
    layer = nn.Linear(4, 2, rng=0)
    layer.freeze()
    optimizer = nn.SGD(layer.parameters(), lr=0.1)
    x = rng.normal(size=(3, 4))
    out = layer(x)
    before = layer.weight.data.copy()
    layer.backward(np.ones_like(out))
    optimizer.step()
    assert np.allclose(layer.weight.data, before)


def test_state_dict_round_trip(tmp_path, rng):
    model = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1, rng=0), nn.BatchNorm2d(4), nn.ReLU())
    x = rng.normal(size=(2, 3, 6, 6))
    model.train()
    model(x)
    path = tmp_path / "model.npz"
    nn.save_state_dict(model, path)
    other = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1, rng=5), nn.BatchNorm2d(4), nn.ReLU())
    nn.load_state_dict(other, path)
    model.eval()
    other.eval()
    assert np.allclose(model(x), other(x))


def test_load_state_dict_reports_missing_keys():
    model = nn.Linear(3, 2, rng=0)
    with pytest.raises(KeyError):
        model.load_state_dict({"weight": np.zeros((2, 3))})


@pytest.mark.parametrize("optimizer_name", ["sgd", "adam"])
def test_optimizers_reduce_quadratic_loss(optimizer_name, rng):
    param = nn.Parameter(rng.normal(size=(5,)))
    optimizer = (
        nn.SGD([param], lr=0.1, momentum=0.5)
        if optimizer_name == "sgd"
        else nn.Adam([param], lr=0.1)
    )
    initial = float(np.sum(param.data**2))
    for _ in range(50):
        optimizer.zero_grad()
        param.accumulate_grad(2 * param.data)
        optimizer.step()
    assert float(np.sum(param.data**2)) < initial * 0.1


def test_step_lr_and_cosine_lr_decay():
    param = nn.Parameter(np.zeros(3))
    optimizer = nn.SGD([param], lr=1.0)
    scheduler = nn.StepLR(optimizer, step_size=2, gamma=0.1)
    for _ in range(4):
        scheduler.step()
    assert optimizer.lr == pytest.approx(0.01)
    optimizer2 = nn.Adam([param], lr=1.0)
    cosine = nn.CosineLR(optimizer2, total_epochs=10)
    for _ in range(10):
        cosine.step()
    assert optimizer2.lr == pytest.approx(0.0, abs=1e-9)


def test_cross_entropy_matches_manual_computation(rng):
    logits = rng.normal(size=(4, 3))
    labels = np.array([0, 1, 2, 1])
    criterion = nn.CrossEntropyLoss()
    loss = criterion(logits, labels)
    manual = -np.mean(log_softmax(logits)[np.arange(4), labels])
    assert loss == pytest.approx(manual)
    grad = criterion.backward()
    assert grad.shape == logits.shape
    # gradient rows sum to zero for hard labels
    assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)


def test_cross_entropy_gradient_matches_finite_differences(rng):
    logits = rng.normal(size=(3, 4))
    labels = np.array([1, 0, 3])
    criterion = nn.CrossEntropyLoss(label_smoothing=0.1)
    criterion(logits, labels)
    grad = criterion.backward()
    eps = 1e-6
    for index in [(0, 1), (2, 3), (1, 0)]:
        plus = logits.copy()
        plus[index] += eps
        minus = logits.copy()
        minus[index] -= eps
        numeric = (criterion(plus, labels) - criterion(minus, labels)) / (2 * eps)
        assert grad[index] == pytest.approx(numeric, rel=1e-4, abs=1e-6)


def test_mse_loss_and_gradient(rng):
    predictions = rng.normal(size=(4, 3))
    targets = rng.normal(size=(4, 3))
    criterion = nn.MSELoss()
    loss = criterion(predictions, targets)
    assert loss == pytest.approx(float(np.mean((predictions - targets) ** 2)))
    grad = criterion.backward()
    assert grad.shape == predictions.shape


def test_softmax_rows_sum_to_one(rng):
    logits = rng.normal(size=(6, 9)) * 20
    probabilities = softmax(logits)
    assert np.allclose(probabilities.sum(axis=1), 1.0)
    assert np.all(probabilities >= 0)


def test_one_hot_and_accuracy():
    labels = np.array([0, 2, 1])
    encoded = one_hot(labels, 3)
    assert encoded.shape == (3, 3)
    assert np.array_equal(np.argmax(encoded, axis=1), labels)
    logits = np.array([[3.0, 0, 0], [0, 0, 5.0], [0, 1.0, 0]])
    assert accuracy(logits, labels) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        one_hot(np.array([3]), 3)


def test_im2col_col2im_are_adjoint(rng):
    """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
    x = rng.normal(size=(2, 3, 6, 6))
    cols, out_h, out_w = im2col(x, kernel=3, stride=1, padding=1)
    y = rng.normal(size=cols.shape)
    lhs = float(np.sum(cols * y))
    rhs = float(np.sum(x * col2im(y, x.shape, kernel=3, stride=1, padding=1)))
    assert lhs == pytest.approx(rhs, rel=1e-10)


def test_im2col_matches_reference_loop(rng):
    """The sliding_window_view unfold equals the per-offset gather, any geometry."""
    for kernel, stride, padding in ((3, 1, 1), (2, 2, 0), (3, 2, 1), (4, 3, 2)):
        x = rng.normal(size=(2, 3, 9, 9))
        cols, out_h, out_w = im2col(x, kernel=kernel, stride=stride, padding=padding)
        padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        reference = np.empty((2, 3, kernel, kernel, out_h, out_w))
        for ky in range(kernel):
            for kx in range(kernel):
                reference[:, :, ky, kx] = padded[
                    :, :, ky : ky + stride * out_h : stride, kx : kx + stride * out_w : stride
                ]
        reference = reference.transpose(0, 4, 5, 1, 2, 3).reshape(cols.shape)
        np.testing.assert_array_equal(cols, reference)


def test_im2col_preserves_dtype(rng):
    x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
    cols, _, _ = im2col(x, kernel=3, stride=1, padding=1)
    assert cols.dtype == np.float32


def test_pooling_backward_keeps_forward_dtype(rng):
    for pool in (nn.MaxPool2d(2), nn.AvgPool2d(2)):
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        out = pool(x)
        assert out.dtype == np.float32
        grad = pool.backward(np.ones_like(out, dtype=np.float64))
        assert grad.dtype == np.float32


@pytest.mark.parametrize("groups", [1, 2], ids=["ungrouped", "grouped"])
def test_conv_backward_keeps_forward_dtype(rng, groups):
    conv = nn.Conv2d(4, 4, 3, padding=1, groups=groups, rng=1)
    x = rng.normal(size=(2, 4, 8, 8)).astype(np.float32)
    out = conv(x)
    grad = conv.backward(np.ones_like(out, dtype=np.float64))
    assert grad.dtype == np.float32
    assert grad.shape == x.shape


def test_sigmoid_forward_keeps_forward_dtype(rng):
    sigmoid = nn.Sigmoid()
    x = rng.normal(size=(3, 4)).astype(np.float32)
    out = sigmoid(x)
    assert out.dtype == np.float32
    assert sigmoid.backward(np.ones_like(out)).dtype == np.float32
    # integer inputs still promote so the exponentials stay exact
    assert sigmoid(np.arange(-2, 3).reshape(1, 5)).dtype == np.float64


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_grouped_conv_matches_ungrouped_halves(rng, dtype):
    """The groups > 1 loop agrees with independent groups==1 fast-path convs."""
    grouped = nn.Conv2d(4, 6, 3, stride=2, padding=1, groups=2, rng=1)
    halves = [nn.Conv2d(2, 3, 3, stride=2, padding=1, rng=2), nn.Conv2d(2, 3, 3, stride=2, padding=1, rng=3)]
    for g, half in enumerate(halves):
        half.weight.copy_(grouped.weight.data[g * 3 : (g + 1) * 3])
        half.bias.copy_(grouped.bias.data[g * 3 : (g + 1) * 3])
    x = rng.normal(size=(2, 4, 8, 8)).astype(dtype)
    out = grouped(x)
    expected = np.concatenate([half(x[:, g * 2 : (g + 1) * 2]) for g, half in enumerate(halves)], axis=1)
    np.testing.assert_array_equal(out, expected)

    upstream = rng.normal(size=out.shape)
    grad = grouped.backward(upstream)
    expected_grad = np.concatenate(
        [half.backward(upstream[:, g * 3 : (g + 1) * 3]) for g, half in enumerate(halves)],
        axis=1,
    )
    np.testing.assert_allclose(grad, expected_grad, rtol=0.0, atol=1e-12)
    for g, half in enumerate(halves):
        np.testing.assert_allclose(
            grouped.weight.grad[g * 3 : (g + 1) * 3], half.weight.grad, rtol=0.0, atol=1e-12
        )
        np.testing.assert_allclose(
            grouped.bias.grad[g * 3 : (g + 1) * 3], half.bias.grad, rtol=0.0, atol=1e-12
        )


def test_conv_eval_mode_drops_im2col_scratch_but_backward_still_works(rng):
    """Inference must not retain training-sized im2col buffers; the white-box
    prompting path (backward through a frozen model in eval mode) re-unfolds
    lazily and must produce the same gradients as a train-mode pass."""
    conv = nn.Conv2d(3, 4, 3, padding=1, rng=1)
    x = rng.normal(size=(2, 3, 8, 8))

    conv.train()
    out_train = conv(x)
    assert conv._cols is not None
    upstream = rng.normal(size=out_train.shape)
    grad_train = conv.backward(upstream)
    weight_grad_train = conv.weight.grad.copy()
    conv.zero_grad()

    conv.eval()
    out_eval = conv(x)
    assert conv._cols is None  # the k^2-inflated scratch is gone ...
    np.testing.assert_array_equal(out_train, out_eval)
    grad_eval = conv.backward(upstream)  # ... but backward re-unfolds lazily
    np.testing.assert_array_equal(grad_train, grad_eval)
    np.testing.assert_array_equal(weight_grad_train, conv.weight.grad)

    # an eval backward arms the cache (white-box prompting pattern: one unfold
    # per step instead of two) and a backward-free forward disarms it again
    conv(x)
    assert conv._cols is not None
    conv.backward(upstream)
    conv(x)
    assert conv._cols is not None
    conv(x)
    assert conv._cols is None


def test_clip_grad_norm_scales_gradients(rng):
    params = [nn.Parameter(rng.normal(size=(4,))) for _ in range(3)]
    for param in params:
        param.accumulate_grad(rng.normal(size=(4,)) * 100)
    from repro.nn.functional import clip_grad_norm

    clip_grad_norm(params, max_norm=1.0)
    total = np.sqrt(sum(float(np.sum(p.grad**2)) for p in params))
    assert total <= 1.0 + 1e-9


# ---------------------------------------------------------------------------
# conv engines and precision tiers
# ---------------------------------------------------------------------------

ENGINE_CASES = [
    ("k3", dict(in_channels=3, out_channels=4, kernel_size=3, padding=1), (2, 3, 8, 8)),
    ("k3-stride", dict(in_channels=3, out_channels=4, kernel_size=3, stride=2, padding=1), (2, 3, 9, 9)),
    ("k5-pad2", dict(in_channels=2, out_channels=3, kernel_size=5, padding=2), (2, 2, 10, 10)),
    ("k3-nopad", dict(in_channels=4, out_channels=6, kernel_size=3), (3, 4, 7, 7)),
    ("k1", dict(in_channels=6, out_channels=4, kernel_size=1), (2, 6, 8, 8)),
    ("k1-stride", dict(in_channels=6, out_channels=4, kernel_size=1, stride=2), (2, 6, 9, 9)),
    ("grouped", dict(in_channels=4, out_channels=6, kernel_size=3, stride=2, padding=1, groups=2), (2, 4, 8, 8)),
    ("depthwise", dict(in_channels=4, out_channels=4, kernel_size=3, padding=1, groups=4), (2, 4, 6, 6)),
    ("big", dict(in_channels=8, out_channels=8, kernel_size=3, padding=1), (8, 8, 16, 16)),
]


def _run_conv(conv_kwargs, x, upstream, engine, monkeypatch, training=True):
    """One forward+backward under a forced engine; returns all four tensors."""
    monkeypatch.setenv("REPRO_CONV_ENGINE", engine)
    conv = nn.Conv2d(rng=1, **conv_kwargs)
    if not training:
        conv.eval()
    out = conv(x)
    grad_input = conv.backward(upstream)
    return out, grad_input, conv.weight.grad.copy(), conv.bias.grad.copy()


@pytest.mark.parametrize("training", [True, False], ids=["train", "eval"])
@pytest.mark.parametrize(
    "name,conv_kwargs,shape", ENGINE_CASES, ids=[c[0] for c in ENGINE_CASES]
)
def test_conv_engines_agree_within_float64_tolerance(
    name, conv_kwargs, shape, training, rng, monkeypatch
):
    """Implicit-GEMM (and the pointwise shortcut it enables for k=1) must match
    the explicit im2col engine to 1e-9 at float64 on every geometry — stride,
    padding, groups (where implicit falls back to im2col) and eval mode."""
    x = rng.normal(size=shape)
    probe = nn.Conv2d(rng=1, **conv_kwargs)
    upstream = rng.normal(size=probe(x).shape)
    reference = _run_conv(conv_kwargs, x, upstream, "im2col", monkeypatch, training)
    implicit = _run_conv(conv_kwargs, x, upstream, "implicit", monkeypatch, training)
    for ref, got, label in zip(reference, implicit, ("out", "grad_input", "grad_weight", "grad_bias")):
        np.testing.assert_allclose(got, ref, rtol=0.0, atol=1e-9, err_msg=f"{name}/{label}")


def test_conv_float64_auto_keeps_the_explicit_engine(rng, monkeypatch):
    """The reference tier carries a bit-identity contract: under "auto" a
    float64 conv must run the historical im2col path, never the re-tiled
    engines whose GEMMs round differently."""
    monkeypatch.delenv("REPRO_CONV_ENGINE", raising=False)
    for kwargs, shape in (
        (dict(in_channels=3, out_channels=4, kernel_size=3, padding=1), (16, 3, 16, 16)),
        (dict(in_channels=6, out_channels=4, kernel_size=1), (2, 6, 8, 8)),
    ):
        conv = nn.Conv2d(rng=1, **kwargs)
        conv(rng.normal(size=shape))
        assert conv._engine == "im2col"


def test_conv_float32_auto_selects_fast_engines(rng, monkeypatch):
    """The float32 tier picks pointwise for 1x1 convs and implicit GEMM once
    the would-be column buffer is large, and its results stay float32 and
    within float32 accumulation tolerance of the explicit engine."""
    monkeypatch.delenv("REPRO_CONV_ENGINE", raising=False)
    pointwise = nn.Conv2d(6, 4, 1, rng=1)
    pointwise(rng.normal(size=(2, 6, 8, 8)).astype(np.float32))
    assert pointwise._engine == "pointwise"

    kwargs = dict(in_channels=8, out_channels=8, kernel_size=3, padding=1)
    x = rng.normal(size=(16, 8, 32, 32)).astype(np.float32)
    auto = nn.Conv2d(rng=1, **kwargs).astype(np.float32)
    out_auto = auto(x)
    assert auto._engine == "implicit"
    assert out_auto.dtype == np.float32
    upstream = rng.normal(size=out_auto.shape).astype(np.float32)
    grad_auto = auto.backward(upstream)
    assert grad_auto.dtype == np.float32

    monkeypatch.setenv("REPRO_CONV_ENGINE", "im2col")
    explicit = nn.Conv2d(rng=1, **kwargs).astype(np.float32)
    out_ref = explicit(x)
    grad_ref = explicit.backward(upstream)
    np.testing.assert_allclose(out_auto, out_ref, rtol=0.0, atol=1e-4)
    np.testing.assert_allclose(grad_auto, grad_ref, rtol=0.0, atol=1e-4)
    np.testing.assert_allclose(auto.weight.grad, explicit.weight.grad, rtol=0.0, atol=1e-3)


def test_conv_engine_override_rejects_unknown_value(monkeypatch):
    from repro.nn.conv import conv_engine_override

    monkeypatch.setenv("REPRO_CONV_ENGINE", "winograd")
    with pytest.raises(ValueError, match="REPRO_CONV_ENGINE"):
        conv_engine_override()


def test_matmul_col2im_matches_unfused_form(rng):
    from repro.nn.functional import matmul_col2im

    for kernel, stride, padding, shape in (
        (3, 1, 1, (5, 3, 8, 8)),
        (3, 2, 1, (4, 2, 9, 9)),
        (5, 1, 2, (3, 4, 10, 10)),
    ):
        n, c, h, w = shape
        out_h = (h + 2 * padding - kernel) // stride + 1
        out_w = (w + 2 * padding - kernel) // stride + 1
        cout = 6
        grad_flat = rng.normal(size=(n * out_h * out_w, cout))
        w_mat = rng.normal(size=(cout, c * kernel * kernel))
        fused = matmul_col2im(grad_flat, w_mat, shape, kernel, stride, padding)
        unfused = col2im(grad_flat @ w_mat, shape, kernel, stride, padding)
        np.testing.assert_allclose(fused, unfused, rtol=0.0, atol=1e-9)


def test_col2im_blocking_is_bitwise_stable(rng):
    """Image blocking re-tiles only the scatter-add, so any block size must
    fold to bitwise-identical gradients (the float64 contract depends on it)."""
    import repro.nn.functional as F

    x_shape = (7, 3, 8, 8)
    cols, out_h, out_w = im2col(rng.normal(size=x_shape), kernel=3, stride=1, padding=1)
    grad_cols = rng.normal(size=cols.shape)
    results = []
    original = F._COL2IM_BLOCK_BYTES
    try:
        for block_bytes in (1, 1 << 12, original, 1 << 30):
            F._COL2IM_BLOCK_BYTES = block_bytes
            results.append(col2im(grad_cols, x_shape, kernel=3, stride=1, padding=1))
    finally:
        F._COL2IM_BLOCK_BYTES = original
    for other in results[1:]:
        np.testing.assert_array_equal(results[0], other)


def test_functional_ops_preserve_float32(rng):
    x32 = rng.normal(size=(4, 5)).astype(np.float32)
    assert softmax(x32).dtype == np.float32
    assert log_softmax(x32).dtype == np.float32
    from repro.nn.functional import sigmoid

    assert sigmoid(x32).dtype == np.float32
    assert one_hot(np.array([0, 2]), 3, dtype=np.float32).dtype == np.float32
    # the defaults are unchanged: float64 in, float64 out; ints promote
    assert softmax(x32.astype(np.float64)).dtype == np.float64
    assert one_hot(np.array([0, 2]), 3).dtype == np.float64


def test_accuracy_empty_batch_and_shape_contract():
    for dtype in (np.float64, np.float32):
        assert accuracy(np.empty((0, 5), dtype=dtype), np.empty((0,), dtype=np.int64)) == 0.0
    with pytest.raises(ValueError, match="2-D"):
        accuracy(np.zeros((3,)), np.zeros((3,), dtype=np.int64))
    with pytest.raises(ValueError, match="batch size"):
        accuracy(np.zeros((3, 2)), np.zeros((4,), dtype=np.int64))


def test_module_astype_casts_params_buffers_and_optimizer_follows(rng):
    model = nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=1), nn.BatchNorm2d(4), nn.ReLU(), nn.Flatten(),
    )
    model.astype(np.float32)
    assert {p.data.dtype for p in model.parameters()} == {np.dtype(np.float32)}
    assert {b.dtype for _, b in model.named_buffers()} == {np.dtype(np.float32)}
    # optimiser scratch allocates from the parameter dtype
    optimizer = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
    out = model(x)
    model.backward(np.ones_like(out))
    optimizer.step()
    assert {p.data.dtype for p in model.parameters()} == {np.dtype(np.float32)}
    with pytest.raises(ValueError, match="unsupported parameter dtype"):
        model.astype(np.int32)


def test_cross_entropy_targets_follow_logits_dtype(rng):
    criterion = nn.CrossEntropyLoss()
    logits32 = rng.normal(size=(4, 3)).astype(np.float32)
    labels = np.array([0, 1, 2, 1])
    criterion(logits32, labels)
    assert criterion.backward().dtype == np.float32
    criterion(logits32.astype(np.float64), labels)
    assert criterion.backward().dtype == np.float64
