"""Telemetry subsystem tests: tracer, metrics, flight recorder, gateway wiring.

Acceptance property (ISSUE 10): a process-backend gateway run with telemetry
ON produces bit-identical verdicts to telemetry OFF, ships worker spans back
across the pool boundary re-parented under the submitting audit span, and
``python -m repro.obs report`` renders per-stage p50/p95 latency and
queries-per-verdict from the exported trace JSONL.
"""

from __future__ import annotations

import copy
import pickle

import pytest

from repro.config import RuntimeConfig
from repro.obs import MetricsRegistry, Stopwatch, get_tracer, merge_snapshots
from repro.obs.export import export_jsonl, export_metrics, load_trace
from repro.obs.metrics import QUERY_BUCKETS
from repro.obs.report import (
    percentile,
    queries_per_verdict,
    render_report,
    stage_summary,
    summarize,
)
from repro.obs.trace import TraceContext, collect, rebased, relative_to
from repro.obs.__main__ import main as obs_main
from repro.runtime import AuditGateway
from repro.runtime.registry import DetectorSpec
from repro.utils.timer import Timer


@pytest.fixture(autouse=True)
def clean_tracer():
    """The tracer is process-global; every test starts and ends it empty."""
    tracer = get_tracer()
    tracer.disable()
    tracer.drain()
    yield tracer
    tracer.disable()
    tracer.drain()


# ---------------------------------------------------------------------------
# span tracing
# ---------------------------------------------------------------------------

def test_disabled_tracer_is_a_noop(clean_tracer):
    with clean_tracer.span("outer") as handle:
        assert handle.set(key="value") is handle  # chainable no-op
    assert clean_tracer.start_span("x").end() is None
    assert clean_tracer.record("y", 0.0, 1.0) is None
    assert len(clean_tracer) == 0 and clean_tracer.recorded == 0


def test_nested_spans_parent_and_share_a_trace(clean_tracer):
    clean_tracer.enable()
    with clean_tracer.span("outer"):
        with clean_tracer.span("inner", stage="fit"):
            pass
    inner, outer = clean_tracer.drain()
    assert (inner.name, outer.name) == ("inner", "outer")
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    assert inner.trace_id == outer.trace_id
    assert inner.attrs == {"stage": "fit"}
    assert outer.start <= inner.start <= inner.end <= outer.end


def test_start_span_handle_ends_once(clean_tracer):
    clean_tracer.enable()
    handle = clean_tracer.start_span("manual")
    try:
        handle.set(k=1)
    finally:
        handle.end()
    handle.end()  # idempotent
    spans = clean_tracer.drain()
    assert [s.name for s in spans] == ["manual"]
    assert spans[0].attrs == {"k": 1}


def test_record_emits_a_complete_span(clean_tracer):
    clean_tracer.enable()
    span_id = clean_tracer.record("gateway.audit", 1.0, 3.5, tenant="a")
    (span,) = clean_tracer.drain()
    assert span.span_id == span_id
    assert span.duration == 2.5 and span.attrs == {"tenant": "a"}


def test_collect_sink_works_with_tracer_disabled(clean_tracer):
    """A worker's tracer is globally off; the per-task sink still collects,
    parented under the shipped-in context."""
    ctx = TraceContext(trace_id="t1", span_id="s1")
    with collect(ctx) as spans:
        assert clean_tracer.active()
        with clean_tracer.span("pool.execute"):
            with clean_tracer.span("inspect.prompt"):
                pass
    assert not clean_tracer.active()
    assert len(clean_tracer) == 0  # nothing leaked into the global buffer
    inner, root = spans
    assert root.trace_id == "t1" and root.parent_id == "s1"
    assert inner.parent_id == root.span_id


def test_relative_and_rebased_round_trip(clean_tracer):
    ctx = TraceContext(trace_id="t", span_id="s")
    with collect(ctx) as spans:
        with clean_tracer.span("pool.execute"):
            pass
    shipped = relative_to(spans, spans[0].start)
    assert shipped[0].start == 0.0
    landed = rebased(shipped, anchor_end=100.0)
    assert landed[0].end == 100.0
    assert landed[0].duration == pytest.approx(spans[0].duration)
    # the originals are untouched (both helpers copy)
    assert spans[0].start != 0.0 or spans[0].end != 100.0


def test_span_records_pickle_and_serialize(clean_tracer):
    clean_tracer.enable()
    with clean_tracer.span("x", n=3):
        pass
    (span,) = clean_tracer.drain()
    clone = pickle.loads(pickle.dumps(span))
    assert clone == span
    assert type(span).from_dict(span.to_dict()) == span


# ---------------------------------------------------------------------------
# mergeable metrics
# ---------------------------------------------------------------------------

def test_counters_gauges_histograms_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("store.hits").inc(3)
    registry.gauge("cache.bytes").set(128)
    histogram = registry.histogram("audit_seconds", tenant="a")
    histogram.observe(0.002)
    histogram.observe(999.0)  # overflow bucket
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"store.hits": 3}
    assert snapshot["gauges"] == {"cache.bytes": 128}
    payload = snapshot["histograms"]["audit_seconds{tenant=a}"]
    assert payload["count"] == 2
    assert len(payload["counts"]) == len(payload["buckets"]) + 1
    assert payload["counts"][-1] == 1  # the overflow landed past the last bound


def test_merge_snapshots_is_associative():
    snaps = []
    for hits, value in ((1, 0.01), (2, 0.5), (4, 5.0)):
        registry = MetricsRegistry()
        registry.counter("hits").inc(hits)
        registry.histogram("lat").observe(value)
        snaps.append(registry.snapshot())
    a, b, c = snaps
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    assert left == right
    assert left["counters"]["hits"] == 7
    assert left["histograms"]["lat"]["count"] == 3


def test_merge_rejects_mismatched_buckets():
    first = MetricsRegistry()
    first.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
    second = MetricsRegistry()
    second.histogram("lat", buckets=(1.0, 4.0)).observe(1.5)
    with pytest.raises(ValueError, match="bucket layouts differ"):
        merge_snapshots(first.snapshot(), second.snapshot())


def test_registry_pickles_without_its_lock():
    registry = MetricsRegistry()
    registry.counter("n").inc(9)
    registry.histogram("q", buckets=QUERY_BUCKETS).observe(10)
    clone = pickle.loads(pickle.dumps(registry))
    clone.counter("n").inc(1)  # the recreated lock works
    assert clone.snapshot()["counters"]["n"] == 10


def test_counter_properties_preserve_component_stats():
    """The rebased component counters keep their attribute API and stats
    shape, while the values land in the mergeable registry."""
    from repro.runtime.store import ArtifactStore

    store = ArtifactStore(None, enabled=False)
    store.misses += 2
    store.hits += 1
    assert (store.hits, store.misses) == (1, 2)
    assert store.metrics.snapshot()["counters"] == {"store.hits": 1, "store.misses": 2}


# ---------------------------------------------------------------------------
# stopwatch / Timer unification
# ---------------------------------------------------------------------------

def test_stopwatch_measures_and_clears():
    watch = Stopwatch()
    assert not watch.running and watch.elapsed() == 0.0 and watch.stop() == 0.0
    assert watch.start() is watch and watch.running
    assert watch.elapsed() >= 0.0 and watch.running  # elapsed() does not stop
    assert watch.stop() >= 0.0 and not watch.running


def test_timer_accumulates_named_durations():
    timer = Timer()
    with timer.measure("fit"):
        pass
    with timer.measure("fit"):
        pass
    with timer.measure("audit"):
        pass
    assert timer.total("fit") >= 0.0
    assert set(timer.totals()) == {"fit", "audit"}
    assert timer.total("missing") == 0.0


# ---------------------------------------------------------------------------
# export + flight-recorder report
# ---------------------------------------------------------------------------

def _sample_spans(tracer):
    tracer.enable()
    audit_id = tracer.record("gateway.audit", 0.0, 2.0, queries=100, cache="cold")
    tracer.record("pool.execute", 0.5, 1.9, parent_id=audit_id)
    tracer.record("gateway.audit", 0.0, 1.0, queries=0, cache="memory")
    return tracer.drain()


def test_export_round_trips_and_checks_version(tmp_path, clean_tracer):
    spans = _sample_spans(clean_tracer)
    path = export_jsonl(spans, str(tmp_path / "trace.jsonl"))
    assert load_trace(path) == spans
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "meta", "format_version": 999}\n')
    with pytest.raises(ValueError, match="format_version"):
        load_trace(str(bad))


def test_percentile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == 2.5
    assert percentile([], 50) == 0.0


def test_report_stages_and_query_economics(clean_tracer):
    spans = _sample_spans(clean_tracer)
    stages = stage_summary(spans)
    assert stages["gateway.audit"]["count"] == 2
    assert stages["gateway.audit"]["max"] == 2.0
    economy = queries_per_verdict(spans)
    assert economy == {
        "verdicts": 2,
        "cold_verdicts": 1,
        "queries": 100,
        "amortized_queries_per_verdict": 50.0,
    }
    summary = summarize(spans, top=1)
    assert [s.duration for s in summary["slowest"]] == [2.0]
    text = render_report(spans)
    assert "p50" in text and "p95" in text
    assert "amortized queries/verdict: 50.00" in text
    assert "pool.execute" in text  # the waterfall shows the child span


def test_report_cli_renders_and_fails_cleanly(tmp_path, capsys, clean_tracer):
    spans = _sample_spans(clean_tracer)
    path = export_jsonl(spans, str(tmp_path / "trace.jsonl"))
    assert obs_main(["report", path]) == 0
    assert "per-stage latency" in capsys.readouterr().out
    assert obs_main(["report", str(tmp_path / "absent.jsonl")]) == 1
    empty = export_jsonl([], str(tmp_path / "empty.jsonl"))
    assert obs_main(["report", empty]) == 1
    assert obs_main(["report", path, "--format", "json"]) == 0
    assert '"stages"' in capsys.readouterr().out


def test_export_metrics_writes_snapshot(tmp_path):
    registry = MetricsRegistry()
    registry.counter("n").inc(5)
    path = export_metrics(registry.snapshot(), str(tmp_path / "metrics.json"))
    import json

    payload = json.loads(open(path).read())
    assert payload["snapshot"]["counters"] == {"n": 5}


# ---------------------------------------------------------------------------
# gateway stats schema (dashboard snapshot)
# ---------------------------------------------------------------------------

TENANT_KEYS = {
    "defense", "architecture", "precision", "family", "detector_source",
    "accepted", "rejected", "query_count", "query_calls", "cache_hits",
    "dedup_hits", "provisioned", "amortized_queries_per_verdict",
}
REGISTRY_KEYS = {
    "hits", "store_hits", "fits", "evictions", "gc_evictions",
    "loaded", "loaded_bytes", "lru_bytes",
}
STORE_KEYS = {"hits", "misses"}
VERDICT_CACHE_KEYS = {
    "enabled", "memory_hits", "store_hits", "dedup_hits", "misses", "hit_rate",
    "inspections", "entries", "memory_bytes", "max_bytes", "ttl_seconds",
    "evictions", "expirations",
}
WORKER_POOL_KEYS = {"backend", "workers", "started", "tasks"}
TELEMETRY_KEYS = {"enabled", "spans_recorded", "metrics"}
TOP_LEVEL_KEYS = {
    "tenants", "registry", "store", "verdict_cache",
    "amortized_queries_per_verdict", "worker_pool", "telemetry",
    "in_flight", "max_in_flight",
}


def test_stats_snapshot_schema(
    micro_profile, tiny_dataset, tiny_test_dataset, trained_mlp, tmp_path
):
    """The full dashboard key set, asserted exactly so a silently dropped
    (or renamed) panel fails loudly."""
    runtime = RuntimeConfig(cache_dir=str(tmp_path), verdict_cache=True)
    with AuditGateway(runtime=runtime) as gateway:
        spec = DetectorSpec(
            defense="bprom", profile=micro_profile, architecture="mlp", seed=0
        )
        gateway.register_tenant(
            "tabular-mlp", spec, tiny_dataset, tiny_test_dataset, tiny_test_dataset
        )
        list(gateway.stream([("vendor-0", copy.deepcopy(trained_mlp))]))
        stats = gateway.stats()
    assert set(stats) == TOP_LEVEL_KEYS
    assert set(stats["tenants"]) == {"tabular-mlp"}
    assert set(stats["tenants"]["tabular-mlp"]) == TENANT_KEYS
    assert set(stats["registry"]) == REGISTRY_KEYS
    for shard_stats in stats["store"].values():
        assert set(shard_stats) == STORE_KEYS
    assert set(stats["verdict_cache"]) == VERDICT_CACHE_KEYS
    assert set(stats["worker_pool"]) == WORKER_POOL_KEYS
    assert set(stats["telemetry"]) == TELEMETRY_KEYS
    assert stats["telemetry"]["enabled"] is False  # runtime did not opt in
    metrics = stats["telemetry"]["metrics"]
    assert set(metrics) == {"counters", "gauges", "histograms"}
    # latency histograms are recorded even with the tracer off
    assert "gateway.audit_seconds{tenant=tabular-mlp}" in metrics["histograms"]
    assert metrics["histograms"]["gateway.audit_seconds{tenant=tabular-mlp}"]["count"] == 1
    # the rebased component counters show up in the merged fleet metrics
    assert metrics["counters"]["verdict_cache.misses"] == 1
    assert metrics["counters"]["pool.tasks"] == 1


def test_stats_verdict_cache_panel_is_none_without_cache(tmp_path):
    with AuditGateway(runtime=RuntimeConfig(cache_dir=str(tmp_path))) as gateway:
        assert gateway.stats()["verdict_cache"] is None


# ---------------------------------------------------------------------------
# acceptance: process backend, telemetry ON == OFF, cross-pool re-parenting
# ---------------------------------------------------------------------------

def test_process_backend_telemetry_on_is_bit_identical_and_reparents(
    micro_profile, tiny_dataset, tiny_test_dataset, trained_mlp, tmp_path, capsys
):
    spec = DetectorSpec(
        defense="bprom", profile=micro_profile, architecture="mlp", seed=0
    )
    submissions = [("vendor-0", trained_mlp), ("vendor-1", trained_mlp)]
    results = {}
    for telemetry in (False, True):
        runtime = RuntimeConfig(
            workers=2,
            cache_dir=str(tmp_path / ("on" if telemetry else "off")),
            gateway_backend="process",
            telemetry=telemetry,
        )
        with AuditGateway(runtime=runtime) as gateway:
            gateway.register_tenant(
                "tabular-mlp", spec, tiny_dataset, tiny_test_dataset, tiny_test_dataset
            )
            assert gateway.worker_pool.backend == "process"
            results[telemetry] = {
                verdict.name: verdict
                for verdict in gateway.stream(
                    (name, copy.deepcopy(model)) for name, model in submissions
                )
            }
            stats = gateway.stats()
        assert stats["telemetry"]["enabled"] is telemetry

    # -- bit-identity: telemetry must be a pure observer --------------------
    for name in ("vendor-0", "vendor-1"):
        on, off = results[True][name], results[False][name]
        assert on.backdoor_score == off.backdoor_score, name
        assert on.is_backdoored == off.is_backdoored, name
        assert on.prompted_accuracy == off.prompted_accuracy, name
        assert on.query_count == off.query_count, name
        assert on.query_calls == off.query_calls, name

    # -- the trace re-parents across the process-pool boundary --------------
    tracer = get_tracer()
    spans = tracer.drain()
    tracer.disable()
    by_id = {s.span_id: s for s in spans}
    audits = [s for s in spans if s.name == "gateway.audit"]
    assert {s.attrs["key"] for s in audits} == {"vendor-0", "vendor-1"}
    pool_spans = [s for s in spans if s.name == "pool.execute"]
    assert len(pool_spans) == 2
    for pool_span in pool_spans:
        audit = by_id[pool_span.parent_id]  # worker root parents the audit span
        assert audit.name == "gateway.audit"
        assert pool_span.trace_id == audit.trace_id
        # rebased onto the gateway clock: nested inside the audit span, with
        # the leading gap (queue wait) in front
        assert audit.start <= pool_span.start <= pool_span.end <= audit.end + 1e-9
    # the worker-side inspection spans crossed the boundary too
    prompt_spans = [s for s in spans if s.name == "inspect.prompt"]
    assert len(prompt_spans) == 2
    for prompt_span in prompt_spans:
        assert by_id[prompt_span.parent_id].name == "pool.execute"
        assert prompt_span.attrs["queries"] > 0
    assert any(s.name == "prompt.generation" for s in spans)
    # gateway-side spans share the submissions' traces
    route_traces = {s.trace_id for s in spans if s.name == "gateway.route"}
    assert {s.trace_id for s in audits} <= route_traces

    # -- the flight recorder renders p50/p95 and query economics ------------
    path = export_jsonl(spans, str(tmp_path / "trace.jsonl"))
    assert obs_main(["report", path, "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "p50" in out and "p95" in out
    assert "inspect.prompt" in out and "pool.execute" in out
    total_queries = sum(results[True][n].query_count for n in results[True])
    assert f"amortized queries/verdict: {total_queries / 2:.2f}" in out
