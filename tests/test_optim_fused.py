"""Fused optimiser sweeps must be bit-identical to the naive expressions.

The artifact store keys shadow pools by weight fingerprints, so the fused
in-place Adam/SGD passes must reproduce the original expression-per-line
update math byte for byte — otherwise every cached pool would silently
invalidate.  These tests drive the shipped optimisers and literal reference
implementations of the pre-fusion expressions over identical parameter/grad
streams (including stacked ``(K, ...)`` shapes) and require exact equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam
from repro.nn.parameter import Parameter
from repro.nn.stacked import StackedAdam, StackedSGD


def _make_params(rng: np.random.Generator, shapes):
    return [Parameter(rng.normal(0, 1, shape), name=f"p{i}") for i, shape in enumerate(shapes)]


def _clone_params(params):
    return [Parameter(p.data.copy(), name=p.name) for p in params]


def _set_grads(params, grads):
    for param, grad in zip(params, grads):
        param.grad = grad.copy()


SHAPES = [(7, 3), (16,), (2, 4, 3, 3), (5, 8, 6)]  # incl. a stacked-style (K, ...) rank


class _ReferenceSGD:
    """The pre-fusion SGD step, expression for expression."""

    def __init__(self, parameters, lr, momentum, weight_decay, nesterov):
        self.parameters = list(parameters)
        self.lr, self.momentum = float(lr), float(momentum)
        self.weight_decay, self.nesterov = float(weight_decay), bool(nesterov)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity *= self.momentum
            velocity += grad
            update = grad + self.momentum * velocity if self.nesterov else velocity
            param.data -= self.lr * update


class _ReferenceAdam:
    """The pre-fusion Adam step, expression for expression."""

    def __init__(self, parameters, lr, betas, eps, weight_decay):
        self.parameters = list(parameters)
        self.lr = float(lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps, self.weight_decay = float(eps), float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self):
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                param.data -= self.lr * self.weight_decay * param.data
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def _run_pair(fused, reference, params_fused, params_reference, steps=7, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        grads = [rng.normal(0, 1, p.data.shape) for p in params_fused]
        _set_grads(params_fused, grads)
        _set_grads(params_reference, grads)
        fused.step()
        reference.step()
        for left, right in zip(params_fused, params_reference):
            np.testing.assert_array_equal(left.data, right.data, err_msg=left.name)


@pytest.mark.parametrize("weight_decay", [0.0, 1e-4])
@pytest.mark.parametrize("optimizer_cls", [Adam, StackedAdam])
def test_adam_fused_bit_identical(optimizer_cls, weight_decay, rng):
    params = _make_params(rng, SHAPES)
    reference_params = _clone_params(params)
    fused = optimizer_cls(params, lr=1e-2, weight_decay=weight_decay)
    reference = _ReferenceAdam(
        reference_params, lr=1e-2, betas=(0.9, 0.999), eps=1e-8, weight_decay=weight_decay
    )
    _run_pair(fused, reference, params, reference_params)


@pytest.mark.parametrize("weight_decay", [0.0, 1e-4])
@pytest.mark.parametrize("nesterov", [False, True])
@pytest.mark.parametrize("optimizer_cls", [SGD, StackedSGD])
def test_sgd_fused_bit_identical(optimizer_cls, nesterov, weight_decay, rng):
    params = _make_params(rng, SHAPES)
    reference_params = _clone_params(params)
    fused = optimizer_cls(
        params, lr=1e-2, momentum=0.9, weight_decay=weight_decay, nesterov=nesterov
    )
    reference = _ReferenceSGD(
        reference_params, lr=1e-2, momentum=0.9, weight_decay=weight_decay, nesterov=nesterov
    )
    _run_pair(fused, reference, params, reference_params)


def test_fused_step_skips_gradless_parameters(rng):
    params = _make_params(rng, [(4, 4), (3,)])
    params[1].requires_grad = False
    optimizer = Adam(params, lr=1e-2)
    _set_grads(params, [rng.normal(0, 1, p.data.shape) for p in params])
    frozen = params[1].data.copy()
    before = params[0].data.copy()
    optimizer.step()
    np.testing.assert_array_equal(params[1].data, frozen)
    assert not np.array_equal(params[0].data, before)


def test_fused_step_allocates_scratch_once(rng):
    params = _make_params(rng, [(6, 6)])
    optimizer = SGD(params, lr=1e-2)
    _set_grads(params, [rng.normal(0, 1, (6, 6))])
    optimizer.step()
    scratch = optimizer._scratch
    _set_grads(params, [rng.normal(0, 1, (6, 6))])
    optimizer.step()
    assert optimizer._scratch is scratch  # persistent, not re-allocated per step
