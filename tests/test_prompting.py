"""Tests for visual prompting: the prompt operator, white-box and black-box training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PromptConfig
from repro.prompting import (
    LabelMapping,
    PromptedClassifier,
    VisualPrompt,
    train_prompt_blackbox,
    train_prompt_whitebox,
)


def test_prompt_apply_shapes_and_range(tiny_dataset):
    prompt = VisualPrompt(source_size=12, inner_size=8, channels=3, rng=0)
    prompted = prompt.apply(tiny_dataset.images[:5])
    assert prompted.shape == (5, 3, 12, 12)
    assert prompted.min() >= 0.0 and prompted.max() <= 1.0


def test_prompt_border_mask_geometry():
    prompt = VisualPrompt(source_size=12, inner_size=8, channels=3, rng=0)
    mask = prompt.border_mask
    assert mask.shape == (3, 12, 12)
    assert mask[:, 2:10, 2:10].sum() == 0  # interior is untouched by the prompt
    assert prompt.num_parameters == int(mask.sum()) == 3 * (12 * 12 - 8 * 8)


def test_prompt_preserves_resized_content_in_centre(tiny_dataset):
    prompt = VisualPrompt(source_size=12, inner_size=8, channels=3, init_scale=0.0)
    prompted = prompt.apply(tiny_dataset.images[:2])
    from repro.datasets.transforms import resize_batch

    resized = resize_batch(tiny_dataset.images[:2], 8)
    assert np.allclose(prompted[:, :, 2:10, 2:10], np.clip(resized, 0, 1))


def test_prompt_flat_round_trip():
    prompt = VisualPrompt(source_size=12, inner_size=8, channels=3, rng=0)
    flat = prompt.get_flat()
    prompt.set_flat(flat * 2.0)
    assert np.allclose(prompt.get_flat(), flat * 2.0)
    with pytest.raises(ValueError):
        prompt.set_flat(np.zeros(3))


def test_prompt_validates_sizes():
    with pytest.raises(ValueError):
        VisualPrompt(source_size=8, inner_size=10)


def test_prompt_gradient_interface(rng):
    prompt = VisualPrompt(source_size=12, inner_size=8, channels=3, rng=0)
    grad_batch = rng.normal(size=(4, 3, 12, 12))
    prompt.zero_grad()
    prompt.accumulate_grad(grad_batch)
    # interior gradient entries are masked out
    assert np.allclose(prompt.grad[:, 2:10, 2:10], 0.0)
    before = prompt.theta.copy()
    prompt.apply_gradient_step(0.1)
    assert not np.allclose(prompt.theta, before)


def test_label_mapping_identity_and_frequency(rng):
    mapping = LabelMapping(num_source_classes=5, num_target_classes=3, mode="identity")
    probs = rng.random((6, 5))
    mapped = mapping.map_probabilities(probs)
    assert mapped.shape == (6, 3)
    assert np.allclose(mapped, probs[:, :3])
    frequency = LabelMapping(5, 3, mode="frequency")
    source_probs = np.zeros((9, 5))
    # target class 0 always lands on source class 4
    source_probs[:3, 4] = 1.0
    source_probs[3:6, 1] = 1.0
    source_probs[6:, 2] = 1.0
    frequency.fit(source_probs, np.array([0, 0, 0, 1, 1, 1, 2, 2, 2]))
    assert frequency.assignment[0] == 4
    assert frequency.assignment[1] == 1


def test_label_mapping_validation():
    with pytest.raises(ValueError):
        LabelMapping(0, 3)
    with pytest.raises(ValueError):
        LabelMapping(3, 3, mode="learned")
    mapping = LabelMapping(4, 2)
    with pytest.raises(ValueError):
        mapping.map_probabilities(np.zeros((2, 5)))


def _prompt_config():
    return PromptConfig(
        source_size=12,
        inner_size=8,
        epochs=4,
        batch_size=16,
        learning_rate=5e-2,
        blackbox_iterations=5,
        blackbox_population=4,
    )


def test_whitebox_prompt_training_reduces_loss(trained_mlp, tiny_dataset, tiny_test_dataset):
    prompted = train_prompt_whitebox(trained_mlp, tiny_dataset, _prompt_config(), rng=0)
    assert isinstance(prompted, PromptedClassifier)
    losses = prompted.training_losses
    assert losses[-1] <= losses[0]
    accuracy = prompted.evaluate(tiny_test_dataset)
    assert 0.0 <= accuracy <= 1.0
    vector = prompted.query_feature_vector(tiny_test_dataset.images[:3])
    assert vector.shape == (3 * trained_mlp.num_classes,)


def test_whitebox_prompting_leaves_source_model_unchanged(trained_mlp, tiny_dataset):
    before = {name: p.data.copy() for name, p in trained_mlp.model.named_parameters()}
    train_prompt_whitebox(trained_mlp, tiny_dataset, _prompt_config(), rng=0)
    after = dict(trained_mlp.model.named_parameters())
    for name, original in before.items():
        assert np.allclose(original, after[name].data)


def test_blackbox_prompt_training_uses_only_queries(trained_mlp, tiny_dataset):
    calls = {"count": 0}

    def query(images):
        calls["count"] += 1
        return trained_mlp.predict_proba(images)

    prompted = train_prompt_blackbox(
        trained_mlp, tiny_dataset, _prompt_config(), rng=0, query_function=query
    )
    assert calls["count"] > 1
    assert prompted.optimization_result.evaluations > 1
    probabilities = prompted.predict_source_proba(tiny_dataset.images[:4])
    assert probabilities.shape == (4, trained_mlp.num_classes)


@pytest.mark.parametrize("optimizer", ["cma-es", "spsa", "random"])
def test_blackbox_prompting_supports_all_optimizers(optimizer, trained_mlp, tiny_dataset):
    config = PromptConfig(
        source_size=12, inner_size=8, epochs=1, batch_size=8,
        blackbox_optimizer=optimizer, blackbox_iterations=3, blackbox_population=4,
    )
    prompted = train_prompt_blackbox(trained_mlp, tiny_dataset, config, rng=0)
    assert prompted.optimization_result.best_value >= 0.0
