"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.attacks.base import apply_trigger_formula
from repro.datasets.base import ImageDataset
from repro.ml.metrics import auroc, f1_score
from repro.nn.functional import one_hot, softmax
from repro.utils.rng import derive_seed, spawn_rngs

FLOAT_IMAGES = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(
        st.integers(1, 4), st.integers(1, 3), st.integers(2, 6), st.integers(2, 6)
    ),
    elements=st.floats(0.0, 1.0),
)


@settings(max_examples=25, deadline=None)
@given(images=FLOAT_IMAGES, alpha=st.floats(0.0, 1.0))
def test_trigger_formula_output_always_in_range(images, alpha):
    mask = np.ones(images.shape[1:])
    trigger = np.full(images.shape[1:], 0.7)
    out = apply_trigger_formula(images, mask, trigger, alpha=alpha)
    assert out.shape == images.shape
    assert out.min() >= 0.0 and out.max() <= 1.0


@settings(max_examples=25, deadline=None)
@given(images=FLOAT_IMAGES)
def test_zero_mask_is_identity(images):
    mask = np.zeros(images.shape[1:])
    trigger = np.ones(images.shape[1:])
    out = apply_trigger_formula(images, mask, trigger, alpha=0.3)
    assert np.allclose(out, np.clip(images, 0, 1))


@settings(max_examples=30, deadline=None)
@given(
    logits=hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 8), st.integers(2, 6)),
        elements=st.floats(-30, 30),
    )
)
def test_softmax_is_a_probability_distribution(logits):
    probabilities = softmax(logits)
    assert np.all(probabilities >= 0)
    assert np.allclose(probabilities.sum(axis=1), 1.0)


@settings(max_examples=30, deadline=None)
@given(
    scores=hnp.arrays(dtype=np.float64, shape=st.integers(2, 40), elements=st.floats(-5, 5)),
    data=st.data(),
)
def test_auroc_is_invariant_to_monotone_transforms(scores, data):
    labels = np.array(
        data.draw(st.lists(st.integers(0, 1), min_size=len(scores), max_size=len(scores)))
    )
    if labels.sum() == 0 or labels.sum() == len(labels):
        labels[0] = 1 - labels[0]
    # quantise so the affine transform below cannot merge distinct scores
    # through floating-point rounding (which would legitimately change AUROC)
    scores = np.round(scores, 3)
    base = auroc(scores, labels)
    shifted = auroc(scores * 3.0 + 7.0, labels)
    assert abs(base - shifted) < 1e-9
    inverted = auroc(-scores, labels)
    assert abs((1.0 - base) - inverted) < 1e-9


@settings(max_examples=30, deadline=None)
@given(
    predictions=hnp.arrays(dtype=np.int64, shape=st.integers(1, 30), elements=st.integers(0, 1)),
    data=st.data(),
)
def test_f1_is_bounded(predictions, data):
    labels = np.array(
        data.draw(st.lists(st.integers(0, 1), min_size=len(predictions), max_size=len(predictions)))
    )
    value = f1_score(predictions, labels)
    assert 0.0 <= value <= 1.0


@settings(max_examples=20, deadline=None)
@given(labels=st.lists(st.integers(0, 4), min_size=1, max_size=30))
def test_one_hot_round_trip(labels):
    labels = np.array(labels)
    encoded = one_hot(labels, 5)
    assert np.array_equal(np.argmax(encoded, axis=1), labels)
    assert np.allclose(encoded.sum(axis=1), 1.0)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(4, 40),
    classes=st.integers(2, 5),
    fraction=st.floats(0.1, 0.9),
    seed=st.integers(0, 1000),
)
def test_dataset_split_preserves_samples(n, classes, fraction, seed):
    rng = np.random.default_rng(seed)
    dataset = ImageDataset(
        rng.random((n, 3, 4, 4)), rng.integers(0, classes, size=n), num_classes=classes
    )
    split = dataset.split(fraction, rng=seed)
    assert len(split.first) + len(split.second) == n
    merged_labels = np.sort(np.concatenate([split.first.labels, split.second.labels]))
    assert np.array_equal(merged_labels, np.sort(dataset.labels))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), count=st.integers(1, 8))
def test_spawn_rngs_are_deterministic(seed, count):
    first = [g.random() for g in spawn_rngs(seed, count)]
    second = [g.random() for g in spawn_rngs(seed, count)]
    assert first == second


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), salt=st.text(max_size=10))
def test_derive_seed_is_stable_and_in_range(seed, salt):
    a = derive_seed(seed, salt)
    b = derive_seed(seed, salt)
    assert a == b
    assert 0 <= a < 2**31 - 1
