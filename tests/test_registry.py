"""Tests for the advisory lock and the detector registry.

The acceptance properties of the registry subsystem:

* a *second process* (modelled as a fresh registry instance over the same
  store) performs **zero training** for both a BPROM and an MNTD detector on
  a warm store — every stage report cached;
* two concurrent cold-store ``get_or_fit`` callers fit **exactly once**
  (cross-process single-flight via advisory lock files);
* the in-memory LRU respects its byte budget and reloads evicted detectors
  from the store.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.detector import BpromDetector
from repro.defenses.model_level import MNTDDefense
from repro.runtime import AdvisoryLock, LockTimeout
from repro.runtime.registry import DetectorRegistry, DetectorSpec, registry_key
from repro.runtime.store import key_hash


# ---------------------------------------------------------------------------
# advisory lock
# ---------------------------------------------------------------------------

def test_lock_is_exclusive_and_releases(tmp_path):
    path = tmp_path / "locks" / "demo.lock"
    with AdvisoryLock(path) as lock:
        assert lock.held
        assert path.exists()
        with pytest.raises(LockTimeout):
            AdvisoryLock(path, wait_seconds=0.05).acquire()
    assert not path.exists()
    # free again: a second acquire succeeds immediately
    with AdvisoryLock(path, wait_seconds=0.05):
        pass


def test_lock_waits_for_release(tmp_path):
    path = tmp_path / "demo.lock"
    first = AdvisoryLock(path).acquire()
    acquired = []

    def waiter():
        with AdvisoryLock(path, wait_seconds=5.0, poll_seconds=0.01):
            acquired.append(time.monotonic())

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.1)
    assert not acquired  # still blocked on the holder
    first.release()
    thread.join(timeout=5.0)
    assert acquired


def test_stale_lock_takeover(tmp_path):
    path = tmp_path / "demo.lock"
    AdvisoryLock(path).acquire()  # never released: simulated crashed holder
    hour_ago = time.time() - 3600
    os.utime(path, (hour_ago, hour_ago))
    with AdvisoryLock(path, stale_seconds=60.0, wait_seconds=0.5) as lock:
        assert lock.held  # took the abandoned lock over
    assert not path.exists()


def test_release_after_takeover_spares_the_new_holder(tmp_path):
    path = tmp_path / "demo.lock"
    crashed = AdvisoryLock(path).acquire()
    hour_ago = time.time() - 3600
    os.utime(path, (hour_ago, hour_ago))
    successor = AdvisoryLock(path, stale_seconds=60.0, wait_seconds=0.5).acquire()
    crashed.release()  # late release by the evicted holder
    assert path.exists()  # the successor's lock file survives
    holder = successor.holder()
    assert holder is not None and holder["token"] == successor._token
    successor.release()
    assert not path.exists()


def test_lock_refresh_pushes_staleness_out(tmp_path):
    path = tmp_path / "demo.lock"
    with AdvisoryLock(path, stale_seconds=3600.0) as lock:
        hour_ago = time.time() - 3600
        os.utime(path, (hour_ago, hour_ago))
        lock.refresh()
        with pytest.raises(LockTimeout):  # no longer stale, so no takeover
            AdvisoryLock(path, stale_seconds=3600.0, wait_seconds=0.05).acquire()


# ---------------------------------------------------------------------------
# registry: addressing
# ---------------------------------------------------------------------------

def test_registry_key_tracks_every_knob(micro_profile, tiny_dataset, tiny_test_dataset):
    spec = DetectorSpec(defense="bprom", profile=micro_profile, architecture="mlp", seed=3)
    base = key_hash(registry_key(spec, tiny_dataset, tiny_test_dataset, tiny_test_dataset))
    for changed in (
        spec.with_overrides(seed=4),
        spec.with_overrides(defense="mntd"),
        spec.with_overrides(architecture="resnet18"),
        spec.with_overrides(threshold=0.7),
        spec.with_overrides(num_queries=5),
        spec.with_overrides(precision="float32"),
    ):
        other = key_hash(registry_key(changed, tiny_dataset, tiny_test_dataset, tiny_test_dataset))
        assert other != base, changed
    # different datasets change the address too
    assert key_hash(registry_key(spec, tiny_test_dataset, tiny_test_dataset, tiny_test_dataset)) != base


def test_spec_rejects_unknown_defense_and_architecture(micro_profile):
    with pytest.raises(ValueError):
        DetectorSpec(defense="strip", profile=micro_profile)
    with pytest.raises(ValueError):
        DetectorSpec(profile=micro_profile, architecture="vgg")
    with pytest.raises(ValueError, match="precision"):
        DetectorSpec(profile=micro_profile, precision="float16")


def test_precision_tiers_never_share_a_cache_address(
    micro_profile, tiny_dataset, tiny_test_dataset
):
    """float32 fits get their own store keys; float64 keys are unchanged.

    The back-compat half matters as much as the separation half: the default
    tier must produce byte-identical key payloads to the pre-precision-split
    registry, so stores warmed before the split keep serving hits.
    """
    spec = DetectorSpec(defense="bprom", profile=micro_profile, architecture="mlp", seed=3)
    reference = registry_key(spec, tiny_dataset, tiny_test_dataset, tiny_test_dataset)
    assert "precision" not in reference  # pre-split float64 hashes stay stable
    fast = registry_key(
        spec.with_overrides(precision="float32"),
        tiny_dataset,
        tiny_test_dataset,
        tiny_test_dataset,
    )
    assert fast["precision"] == "float32"
    assert key_hash(fast) != key_hash(reference)
    # spec normalisation: case-folded on construction, like the env knob
    assert DetectorSpec(profile=micro_profile, precision="FLOAT32").precision == "float32"


def test_bprom_spec_requires_target_datasets(micro_profile, tiny_dataset, tmp_path):
    registry = DetectorRegistry(runtime=RuntimeConfig(cache_dir=str(tmp_path)))
    with pytest.raises(ValueError, match="target_train"):
        registry.get_or_fit(DetectorSpec(profile=micro_profile, architecture="mlp"), tiny_dataset)


# ---------------------------------------------------------------------------
# registry: cross-process reuse (the ROADMAP acceptance item)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def shared_store_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("registry-store")


@pytest.fixture(scope="module")
def specs(micro_profile):
    return {
        "bprom": DetectorSpec(defense="bprom", profile=micro_profile, architecture="mlp", seed=0),
        "mntd": DetectorSpec(
            defense="mntd", profile=micro_profile, architecture="mlp", seed=0, num_queries=4
        ),
    }


def test_second_process_reuses_both_detector_kinds(
    specs, shared_store_dir, tiny_dataset, tiny_test_dataset, trained_mlp
):
    runtime = RuntimeConfig(cache_dir=str(shared_store_dir))
    first = DetectorRegistry(runtime=runtime)
    fitted_bprom = first.get_or_fit(
        specs["bprom"], tiny_dataset, tiny_test_dataset, tiny_test_dataset
    )
    fitted_mntd = first.get_or_fit(specs["mntd"], tiny_dataset)
    assert fitted_bprom.source == "fit" and fitted_bprom.trained
    assert fitted_mntd.source == "fit" and fitted_mntd.trained
    assert first.fits == 2

    # a fresh registry over the same store models a second process
    second = DetectorRegistry(runtime=runtime)
    warm_bprom = second.get_or_fit(
        specs["bprom"], tiny_dataset, tiny_test_dataset, tiny_test_dataset
    )
    warm_mntd = second.get_or_fit(specs["mntd"], tiny_dataset)
    # zero training: every stage report cached, no fits counted
    for entry in (warm_bprom, warm_mntd):
        assert entry.source == "store"
        assert entry.stage_reports and all(report.cached for report in entry.stage_reports)
        assert not entry.trained
    assert second.fits == 0 and second.store_hits == 2

    # and the reloaded detectors serve bit-identical scores
    assert isinstance(warm_bprom.detector, BpromDetector)
    assert isinstance(warm_mntd.detector, MNTDDefense)
    original = fitted_bprom.detector.inspect(trained_mlp, seed_key="probe")
    reloaded = warm_bprom.detector.inspect(trained_mlp, seed_key="probe")
    assert reloaded.backdoor_score == original.backdoor_score
    assert warm_mntd.detector.score_model(trained_mlp, tiny_dataset) == fitted_mntd.detector.score_model(
        trained_mlp, tiny_dataset
    )

    # third call in the same process: served from the in-memory LRU
    assert second.get_or_fit(specs["mntd"], tiny_dataset).source == "memory"
    assert second.hits == 1


def test_concurrent_cold_callers_fit_exactly_once(
    micro_profile, tiny_dataset, tiny_test_dataset, tmp_path
):
    runtime = RuntimeConfig(cache_dir=str(tmp_path))
    spec = DetectorSpec(defense="mntd", profile=micro_profile, architecture="mlp", num_queries=4)
    registries = [DetectorRegistry(runtime=runtime) for _ in range(2)]
    entries = [None, None]
    errors = []
    barrier = threading.Barrier(2)

    def caller(index):
        try:
            barrier.wait()
            entries[index] = registries[index].get_or_fit(spec, tiny_dataset)
        except BaseException as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [threading.Thread(target=caller, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors
    # single-flight: exactly one registry trained, the other loaded the
    # winner's artifact after waiting on the advisory lock
    assert sum(registry.fits for registry in registries) == 1
    assert sum(registry.store_hits for registry in registries) == 1
    assert all(entry is not None for entry in entries)
    # both callers hold the same fitted detector: the loser's copy came from
    # the winner's artifact, so the tuned query probes agree exactly
    np.testing.assert_array_equal(
        entries[0].detector._query_images, entries[1].detector._query_images
    )


# ---------------------------------------------------------------------------
# registry: LRU byte budget
# ---------------------------------------------------------------------------

def test_lru_byte_budget_evicts_and_reloads(specs, shared_store_dir, tiny_dataset, tiny_test_dataset):
    # budget of one byte: every insert evicts the previous entry (the most
    # recent entry is always retained even though it exceeds the budget)
    runtime = RuntimeConfig(cache_dir=str(shared_store_dir), registry_lru_bytes=1)
    registry = DetectorRegistry(runtime=runtime)
    first = registry.get_or_fit(specs["bprom"], tiny_dataset, tiny_test_dataset, tiny_test_dataset)
    assert first.nbytes > 1
    registry.get_or_fit(specs["mntd"], tiny_dataset)
    assert registry.evictions == 1
    assert registry.stats()["loaded"] == 1
    # the evicted detector reloads from the store, not via a refit
    again = registry.get_or_fit(specs["bprom"], tiny_dataset, tiny_test_dataset, tiny_test_dataset)
    assert again.source == "store"
    assert registry.fits == 0


def test_unbounded_lru_keeps_everything(specs, shared_store_dir, tiny_dataset, tiny_test_dataset):
    registry = DetectorRegistry(runtime=RuntimeConfig(cache_dir=str(shared_store_dir)))
    registry.get_or_fit(specs["bprom"], tiny_dataset, tiny_test_dataset, tiny_test_dataset)
    registry.get_or_fit(specs["mntd"], tiny_dataset)
    stats = registry.stats()
    assert stats["loaded"] == 2 and stats["evictions"] == 0
    assert stats["loaded_bytes"] > 0


def test_registry_without_store_fits_in_process(micro_profile, tiny_dataset):
    registry = DetectorRegistry(runtime=RuntimeConfig())  # no cache_dir: store disabled
    spec = DetectorSpec(defense="mntd", profile=micro_profile, architecture="mlp", num_queries=4)
    entry = registry.get_or_fit(spec, tiny_dataset)
    assert entry.source == "fit"
    # repeat requests still deduplicate through the in-memory LRU
    assert registry.get_or_fit(spec, tiny_dataset).source == "memory"
    assert registry.fits == 1


# ---------------------------------------------------------------------------
# disk-budget GC on the fit path
# ---------------------------------------------------------------------------

def _mntd_spec(micro_profile, seed: int) -> DetectorSpec:
    return DetectorSpec(
        defense="mntd", profile=micro_profile, architecture="mlp", seed=seed, num_queries=4
    )


def test_fit_path_gc_keeps_store_under_budget(micro_profile, tiny_dataset, tmp_path):
    """With ``detector_gc_bytes`` set, every fit runs an opportunistic GC pass
    that evicts idle detectors — but never the artifact the fit just wrote
    (its per-key advisory lock is still held during the pass)."""
    from repro.runtime.registry import DETECTOR_KIND

    runtime = RuntimeConfig(cache_dir=str(tmp_path), detector_gc_bytes=1)
    registry = DetectorRegistry(runtime=runtime)
    entry_a = registry.get_or_fit(_mntd_spec(micro_profile, seed=0), tiny_dataset)
    # age A past the grace period, as a long-idle tenant's detector would be
    manifest = registry.store.directory_for(DETECTOR_KIND, entry_a.key) / "artifact.json"
    stamp = time.time() - 3600
    os.utime(manifest, (stamp, stamp))
    entry_b = registry.get_or_fit(_mntd_spec(micro_profile, seed=1), tiny_dataset)
    assert not registry.store.contains(DETECTOR_KIND, entry_a.key)
    assert registry.store.contains(DETECTOR_KIND, entry_b.key)
    assert registry.stats()["gc_evictions"] == 1


def test_maybe_gc_is_opportunistic_and_off_without_budget(
    micro_profile, tiny_dataset, tmp_path
):
    unbudgeted = DetectorRegistry(runtime=RuntimeConfig(cache_dir=str(tmp_path)))
    unbudgeted.get_or_fit(_mntd_spec(micro_profile, seed=0), tiny_dataset)
    assert unbudgeted.maybe_gc() is None  # no budget: GC never runs

    runtime = RuntimeConfig(cache_dir=str(tmp_path), detector_gc_bytes=1)
    registry = DetectorRegistry(runtime=runtime)
    with registry.store.maintenance_lock():
        # another node is already collecting: skip, don't block the fit path
        assert registry.maybe_gc(grace_seconds=0.0) is None
    result = registry.maybe_gc(grace_seconds=0.0)
    assert result is not None and result["evicted"] == 1
    assert result["bytes_after"] == 0  # the one fitted artifact is gone
    assert registry.gc_evictions == 1
    assert registry.stats()["gc_evictions"] == 1
