"""Tests for the staged pipeline runtime: artifact store, parallel executor,
detector persistence, warm-cache training skips and the serve-many API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.detector import BpromDetector
from repro.core.shadow import ShadowModelFactory
from repro.eval.harness import ExperimentContext
from repro.models.classifier import ImageClassifier
from repro.models.registry import build_classifier
from repro.runtime import (
    ArtifactStore,
    AuditService,
    ParallelExecutor,
    Stage,
    StagedPipeline,
)


# ---------------------------------------------------------------------------
# ArtifactStore
# ---------------------------------------------------------------------------

def test_store_round_trip_and_contains(tmp_path):
    store = ArtifactStore(tmp_path)
    key = {"profile": "micro", "seed": 0, "index": 3}
    assert not store.contains("demo", key)
    with store.open_write("demo", key) as artifact:
        artifact.save_arrays("blob", {"x": np.arange(5.0)})
        artifact.save_json("meta", {"hello": "world"})
    assert store.contains("demo", key)
    artifact = store.open_read("demo", key)
    np.testing.assert_array_equal(artifact.load_arrays("blob")["x"], np.arange(5.0))
    assert artifact.load_json("meta") == {"hello": "world"}


def test_store_key_sensitivity(tmp_path):
    store = ArtifactStore(tmp_path)
    with store.open_write("demo", {"seed": 0}) as artifact:
        artifact.save_json("meta", {})
    assert store.contains("demo", {"seed": 0})
    assert not store.contains("demo", {"seed": 1})


def test_store_failed_write_leaves_no_artifact(tmp_path):
    store = ArtifactStore(tmp_path)
    with pytest.raises(RuntimeError):
        with store.open_write("demo", {"seed": 0}) as artifact:
            artifact.save_json("partial", {})
            raise RuntimeError("boom")
    assert not store.contains("demo", {"seed": 0})
    assert not list((tmp_path / "demo").iterdir())


def test_disabled_store_always_builds(tmp_path):
    store = ArtifactStore(None, enabled=False)
    calls = []
    value = store.fetch("demo", {"k": 1}, build=lambda: calls.append(1) or 42)
    assert value == 42 and calls == [1]
    assert not store.contains("demo", {"k": 1})


def test_store_recovers_from_corrupt_artifact(tmp_path):
    store = ArtifactStore(tmp_path)
    key = {"k": 1}
    with store.open_write("demo", key) as artifact:
        artifact.save_arrays("value", {"x": np.ones(3)})
    # simulate a blob deleted from under an intact manifest
    (store.directory_for("demo", key) / "value.npz").unlink()
    builds = []
    with pytest.warns(UserWarning, match="corrupt"):
        value = store.fetch(
            "demo",
            key,
            build=lambda: builds.append(1) or {"x": np.zeros(3)},
            save=lambda artifact, value: artifact.save_arrays("value", value),
            load=lambda artifact: artifact.load_arrays("value"),
        )
    np.testing.assert_array_equal(value["x"], np.zeros(3))
    assert builds == [1]
    # the rebuilt artifact replaced the corrupt one and loads cleanly now
    np.testing.assert_array_equal(
        store.fetch("demo", key, build=lambda: None, load=lambda a: a.load_arrays("value"))["x"],
        np.zeros(3),
    )


def test_store_caches_none_valued_artifact(tmp_path):
    """A legitimately-``None`` artefact is a hit, not an eternal rebuild."""
    store = ArtifactStore(tmp_path)
    builds = []

    def fetch():
        return store.fetch(
            "maybe",
            {"k": 1},
            build=lambda: builds.append(1) and None,
            save=lambda artifact, value: artifact.save_json("value", value),
            load=lambda artifact: artifact.load_json("value"),
        )

    assert fetch() is None
    assert fetch() is None
    assert builds == [1], "None-valued artifact must not rebuild on a warm store"
    assert store.hits == 1 and store.misses == 1


def test_store_fetch_memoises_on_disk(tmp_path):
    store = ArtifactStore(tmp_path)
    builds = []

    def fetch():
        return store.fetch(
            "numbers",
            {"k": 1},
            build=lambda: builds.append(1) or {"x": np.ones(3)},
            save=lambda artifact, value: artifact.save_arrays("value", value),
            load=lambda artifact: artifact.load_arrays("value"),
        )

    first = fetch()
    second = fetch()
    assert len(builds) == 1
    np.testing.assert_array_equal(first["x"], second["x"])
    assert store.hits == 1 and store.misses == 1


# ---------------------------------------------------------------------------
# ParallelExecutor
# ---------------------------------------------------------------------------

def _square(x: int) -> int:
    return x * x


def test_executor_orders_match_serial():
    items = list(range(20))
    serial = ParallelExecutor(1).map(_square, items)
    threaded = ParallelExecutor(4, "thread").map(_square, items)
    assert serial == threaded == [x * x for x in items]


def test_executor_rejects_bad_config():
    with pytest.raises(ValueError):
        ParallelExecutor(0)
    with pytest.raises(ValueError):
        ParallelExecutor(2, "fiber")
    with pytest.raises(ValueError):
        RuntimeConfig(workers=2, backend="fiber")


def test_runtime_config_properties(tmp_path):
    assert not RuntimeConfig().parallel
    assert RuntimeConfig(workers=4).parallel
    assert not RuntimeConfig(workers=4, cache_dir=None).persistent
    assert RuntimeConfig(cache_dir=str(tmp_path)).persistent
    assert not RuntimeConfig(cache_dir=str(tmp_path), cache=False).persistent


# ---------------------------------------------------------------------------
# StagedPipeline
# ---------------------------------------------------------------------------

def test_pipeline_runs_stages_in_order_and_caches(tmp_path):
    store = ArtifactStore(tmp_path)
    builds = []

    def stages():
        return [
            Stage(
                "numbers",
                build=lambda results: builds.append("numbers") or [1, 2, 3],
                kind="numbers",
                key={"seed": 0},
                save=lambda artifact, value: artifact.save_json("value", value),
                load=lambda artifact, results: artifact.load_json("value"),
            ),
            Stage("total", build=lambda results: sum(results["numbers"])),
        ]

    first = StagedPipeline(stages(), store=store)
    assert first.run() == {"numbers": [1, 2, 3], "total": 6}
    assert [report.cached for report in first.reports] == [False, False]

    second = StagedPipeline(stages(), store=store)
    assert second.run() == {"numbers": [1, 2, 3], "total": 6}
    assert [report.cached for report in second.reports] == [True, False]
    assert builds == ["numbers"]


# ---------------------------------------------------------------------------
# parallel shadow pools (same seeds, same models as sequential)
# ---------------------------------------------------------------------------

def test_parallel_shadow_pool_matches_sequential(micro_profile, tiny_dataset):
    factory = ShadowModelFactory(
        profile=micro_profile, architecture="mlp", shadow_attack="badnets", seed=11
    )
    sequential = factory.build_pool(tiny_dataset, num_clean=2, num_backdoor=2)
    parallel = factory.build_pool(
        tiny_dataset,
        num_clean=2,
        num_backdoor=2,
        executor=ParallelExecutor(3, "thread"),
    )
    assert [s.is_backdoored for s in sequential] == [s.is_backdoored for s in parallel]
    assert [s.target_class for s in sequential] == [s.target_class for s in parallel]
    for left, right in zip(sequential, parallel):
        for p, q in zip(left.classifier.model.parameters(), right.classifier.model.parameters()):
            np.testing.assert_array_equal(p.data, q.data)


def test_seed_normalisation_no_longer_collapses_generators():
    a = ShadowModelFactory(seed=np.random.default_rng(5))
    b = ShadowModelFactory(seed=np.random.default_rng(6))
    assert a.seed != 0 and b.seed != 0
    assert a.seed != b.seed
    c = BpromDetector(seed=np.random.default_rng(5))
    assert c.seed == ShadowModelFactory(seed=np.random.default_rng(5)).seed


# ---------------------------------------------------------------------------
# detector persistence + serve-many API
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fitted_detector(micro_profile, tiny_dataset, tiny_test_dataset):
    detector = BpromDetector(profile=micro_profile, architecture="mlp", seed=0)
    detector.fit(tiny_dataset, tiny_dataset, tiny_test_dataset)
    return detector


@pytest.fixture(scope="module")
def suspicious_fleet(micro_profile, tiny_dataset):
    fleet = []
    for index in range(3):
        model = build_classifier(
            "mlp",
            tiny_dataset.num_classes,
            image_size=tiny_dataset.image_size,
            rng=200 + index,
            name=f"fleet-{index}",
        )
        model.fit(tiny_dataset, micro_profile.classifier, rng=300 + index)
        fleet.append(model)
    return fleet


def test_detector_save_load_bit_identical_scores(
    fitted_detector, suspicious_fleet, tmp_path
):
    path = fitted_detector.save(tmp_path / "detector")
    restored = BpromDetector.load(path)
    for model in suspicious_fleet:
        original = fitted_detector.inspect(model)
        loaded = restored.inspect(model)
        assert loaded.backdoor_score == original.backdoor_score
        assert loaded.is_backdoored == original.is_backdoored
        assert loaded.prompted_accuracy == original.prompted_accuracy


def test_detector_artifact_records_and_restores_precision(fitted_detector, tmp_path):
    """The saved metadata pins the precision tier and wins over the caller's.

    A float32-fitted detector must never silently serve under a float64
    runtime (or vice versa) — ``load`` adopts the tier recorded at save time.
    Artifacts written before the precision split carry no entry and are
    float64 by definition.
    """
    import json

    path = fitted_detector.save(tmp_path / "detector")
    meta_path = path / "detector.json"
    meta = json.loads(meta_path.read_text())
    assert meta["precision"] == "float64"

    # pre-split artifact: no "precision" entry at all -> float64
    del meta["precision"]
    meta_path.write_text(json.dumps(meta))
    assert BpromDetector.load(path).runtime.precision == "float64"

    # float32 artifact overrides whatever runtime the caller supplies
    meta["precision"] = "float32"
    meta_path.write_text(json.dumps(meta))
    assert BpromDetector.load(path).runtime.precision == "float32"
    restored = BpromDetector.load(path, runtime=RuntimeConfig(workers=2))
    assert restored.runtime.precision == "float32"
    assert restored.runtime.workers == 2  # the rest of the runtime is kept


def test_save_requires_fitted_detector(micro_profile, tmp_path):
    detector = BpromDetector(profile=micro_profile, architecture="mlp", seed=0)
    with pytest.raises(RuntimeError):
        detector.save(tmp_path / "nope")


def test_inspect_many_matches_sequential_inspect(fitted_detector, suspicious_fleet):
    sequential = [fitted_detector.inspect(model) for model in suspicious_fleet]
    batched = fitted_detector.inspect_many(
        suspicious_fleet, executor=ParallelExecutor(3, "thread")
    )
    assert [r.backdoor_score for r in batched] == [r.backdoor_score for r in sequential]
    scores = fitted_detector.score_models(suspicious_fleet)
    np.testing.assert_array_equal(scores, [r.backdoor_score for r in sequential])


def test_audit_service_round_trip(fitted_detector, suspicious_fleet, tmp_path):
    path = fitted_detector.save(tmp_path / "detector")
    service = AuditService.from_saved(path, runtime=RuntimeConfig(workers=2))
    catalogue = {model.name: model for model in suspicious_fleet}
    report = service.audit(catalogue)
    assert [verdict.name for verdict in report] == [m.name for m in suspicious_fleet]
    direct = fitted_detector.inspect_many(suspicious_fleet)
    for verdict, result in zip(report, direct):
        assert verdict.backdoor_score == result.backdoor_score
        assert verdict.verdict in ("accept", "reject")


# ---------------------------------------------------------------------------
# warm artifact store: repeated context calls skip all training
# ---------------------------------------------------------------------------

def test_warm_store_skips_all_training(micro_profile, tmp_path, monkeypatch):
    runtime = RuntimeConfig(cache_dir=str(tmp_path / "artifacts"))
    profile = micro_profile.with_overrides(name="micro-warm")

    warm = ExperimentContext(profile, seed=0, runtime=runtime)
    detector = warm.detector(
        "cifar10", "stl10", "mlp", num_clean_shadows=1, num_backdoor_shadows=1
    )
    probe = warm.suspicious_model("cifar10", None, 0, "mlp")
    baseline_score = detector.inspect(probe.classifier).backdoor_score

    fit_calls = []
    original_fit = ImageClassifier.fit

    def counting_fit(self, *args, **kwargs):
        fit_calls.append(self.name)
        return original_fit(self, *args, **kwargs)

    monkeypatch.setattr(ImageClassifier, "fit", counting_fit)
    import repro.prompting.trainer as trainer_module

    original_prompt = trainer_module.train_prompt_whitebox
    prompt_calls = []

    def counting_prompt(*args, **kwargs):
        prompt_calls.append(1)
        return original_prompt(*args, **kwargs)

    monkeypatch.setattr(trainer_module, "train_prompt_whitebox", counting_prompt)

    # a brand-new context (fresh process stand-in) with the same store
    cold = ExperimentContext(profile, seed=0, runtime=runtime)
    restored = cold.detector(
        "cifar10", "stl10", "mlp", num_clean_shadows=1, num_backdoor_shadows=1
    )
    assert fit_calls == [], "warm store must skip classifier training entirely"
    assert prompt_calls == [], "warm store must skip prompt training entirely"
    assert cold.store.hits >= 1
    # the loaded detector reattaches its shadow pool and prompts, so
    # experiments reading them (e.g. figure 5) behave as on a cold cache
    assert len(restored.shadow_models) == len(detector.shadow_models) == 2
    assert len(restored.prompted_shadows) == len(detector.prompted_shadows) == 2

    # the restored detector serves bit-identical scores
    probe_again = cold.suspicious_model("cifar10", None, 0, "mlp")
    assert fit_calls == [], "warm store must also cover the suspicious zoo"
    assert restored.inspect(probe_again.classifier).backdoor_score == baseline_score


def test_prompted_suspicious_cache_keys_on_model_content(
    micro_profile, tiny_dataset, tiny_test_dataset
):
    """Two differently trained models sharing a name must not share prompts."""
    detector = BpromDetector(profile=micro_profile, architecture="mlp", seed=0)
    detector.fit(tiny_dataset, tiny_dataset, tiny_test_dataset)
    context = ExperimentContext(micro_profile.with_overrides(name="micro-fp"), seed=0)

    entries = []
    for rng in (400, 401):
        model = build_classifier(
            "mlp",
            tiny_dataset.num_classes,
            image_size=tiny_dataset.image_size,
            rng=rng,
            name="mlp/cifar10/blend/0",  # same name, as in a poison-rate sweep
        )
        model.fit(tiny_dataset, micro_profile.classifier, rng=rng + 1)
        from repro.eval.harness import SuspiciousModel

        entries.append(SuspiciousModel(model, True))
    first = context.prompted_suspicious(detector, entries[0], "detkey")
    second = context.prompted_suspicious(detector, entries[1], "detkey")
    assert first.source_classifier is entries[0].classifier
    assert second.source_classifier is entries[1].classifier
    assert len(context._prompted_suspicious) == 2


def test_context_without_cache_dir_keeps_memory_semantics(micro_profile):
    context = ExperimentContext(micro_profile.with_overrides(name="micro-mem"), seed=0)
    assert not context.store.enabled
    first = context.datasets("cifar10")
    assert context.datasets("cifar10")[0] is first[0]
