"""Serialization round-trips: state dicts for every architecture, ml models,
and a fitted detector surviving save/load with bit-identical scores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.core.meta import MetaClassifier
from repro.core.shadow import ShadowModel
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegression
from repro.models.registry import available_architectures, build_classifier
from repro.nn.norm import BatchNorm2d
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.runtime import Artifact
from repro.runtime import serialization as ser


@pytest.mark.parametrize("architecture", available_architectures())
def test_state_dict_round_trip_every_architecture(architecture, tiny_dataset, tmp_path):
    """save_state_dict/load_state_dict reproduce outputs for the whole zoo."""
    classifier = build_classifier(
        architecture, tiny_dataset.num_classes, image_size=tiny_dataset.image_size, rng=0
    )
    # one short fit so BatchNorm running statistics diverge from their init
    classifier.fit(tiny_dataset, TrainingConfig(epochs=1, batch_size=8), rng=1)
    path = tmp_path / f"{architecture}.npz"
    save_state_dict(classifier.model, path)

    fresh = build_classifier(
        architecture, tiny_dataset.num_classes, image_size=tiny_dataset.image_size, rng=99
    )
    load_state_dict(fresh.model, path)

    batch = tiny_dataset.images[:5]
    np.testing.assert_array_equal(
        classifier.predict_logits(batch), fresh.predict_logits(batch)
    )
    for (name, original), (other_name, restored) in zip(
        classifier.model.named_buffers(), fresh.model.named_buffers()
    ):
        assert name == other_name
        np.testing.assert_array_equal(original, restored)


def test_batchnorm_buffers_survive_round_trip(tiny_dataset, tmp_path):
    """The resnet carries BatchNorm buffers whose trained values must persist."""
    classifier = build_classifier(
        "resnet18", tiny_dataset.num_classes, image_size=tiny_dataset.image_size, rng=0
    )
    classifier.fit(tiny_dataset, TrainingConfig(epochs=1, batch_size=8), rng=1)
    buffers = dict(classifier.model.named_buffers())
    assert buffers, "resnet is expected to register BatchNorm buffers"
    assert any(
        not np.allclose(value, 0.0) and not np.allclose(value, 1.0)
        for value in buffers.values()
    ), "training should have moved the running statistics"
    assert any(isinstance(m, BatchNorm2d) for m in classifier.model.modules())

    path = tmp_path / "resnet.npz"
    save_state_dict(classifier.model, path)
    fresh = build_classifier(
        "resnet18", tiny_dataset.num_classes, image_size=tiny_dataset.image_size, rng=7
    )
    load_state_dict(fresh.model, path)
    for name, value in fresh.model.named_buffers():
        np.testing.assert_array_equal(value, buffers[name])


def test_classifier_artifact_round_trip(trained_mlp, tiny_dataset, tmp_path):
    artifact = Artifact(tmp_path)
    ser.save_classifier(artifact, trained_mlp)
    restored = ser.load_classifier(artifact)
    assert restored.name == trained_mlp.name
    assert restored.architecture == trained_mlp.architecture
    np.testing.assert_array_equal(
        trained_mlp.predict_proba(tiny_dataset.images[:4]),
        restored.predict_proba(tiny_dataset.images[:4]),
    )


def test_classifier_without_build_spec_is_rejected(tmp_path):
    from repro.models.classifier import ImageClassifier
    from repro.models.mlp import MLPNet

    bare = ImageClassifier(MLPNet(3, input_dim=12, rng=0), 3)
    with pytest.raises(ValueError):
        ser.save_classifier(Artifact(tmp_path), bare)


def test_dataset_artifact_round_trip(tiny_dataset, tmp_path):
    artifact = Artifact(tmp_path)
    ser.save_dataset(artifact, tiny_dataset)
    restored = ser.load_dataset(artifact)
    np.testing.assert_array_equal(restored.images, tiny_dataset.images)
    np.testing.assert_array_equal(restored.labels, tiny_dataset.labels)
    assert restored.num_classes == tiny_dataset.num_classes
    assert restored.name == tiny_dataset.name


def test_random_forest_state_round_trip(rng):
    features = rng.normal(size=(60, 8))
    labels = (features[:, 0] + features[:, 3] > 0).astype(np.int64)
    forest = RandomForestClassifier(n_estimators=12, max_depth=5, rng=0)
    forest.fit(features, labels)
    restored = RandomForestClassifier.from_state(forest.get_state())
    probe = rng.normal(size=(25, 8))
    np.testing.assert_array_equal(forest.predict_proba(probe), restored.predict_proba(probe))


def test_logistic_state_round_trip(rng):
    features = rng.normal(size=(40, 5))
    labels = (features[:, 1] > 0).astype(np.int64)
    model = LogisticRegression(iterations=50, rng=0)
    model.fit(features, labels)
    restored = LogisticRegression.from_state(model.get_state())
    probe = rng.normal(size=(10, 5))
    np.testing.assert_array_equal(model.predict_proba(probe), restored.predict_proba(probe))


def test_meta_classifier_state_round_trip(
    micro_profile, tiny_dataset, tiny_test_dataset, trained_mlp, tmp_path
):
    from repro.core.prompting_stage import prompt_shadow_models

    shadows = [
        ShadowModel(classifier=trained_mlp, is_backdoored=False),
        ShadowModel(classifier=trained_mlp, is_backdoored=True),
    ]
    prompted = prompt_shadow_models(shadows, tiny_dataset, micro_profile, seed=3)
    meta = MetaClassifier(query_samples=4, num_trees=8, augmentation=2, rng=0)
    meta.set_query_pool(tiny_test_dataset)
    meta.fit(prompted, [0, 1])

    artifact = Artifact(tmp_path)
    ser.save_meta_classifier(artifact, meta)
    restored = ser.load_meta_classifier(artifact)
    for item in prompted:
        assert restored.backdoor_score(item) == meta.backdoor_score(item)


def test_mntd_defense_round_trip_bit_identical(micro_profile, tiny_dataset, trained_mlp, tmp_path):
    """MNTD save/load: ``score_model`` outputs must be bit-identical (the
    ROADMAP's cross-process reuse item for the baseline defense)."""
    from repro.defenses.model_level import MNTDDefense

    defense = MNTDDefense(
        profile=micro_profile,
        architecture="mlp",
        shadow_attacks=("badnets", "blend"),
        num_queries=4,
        threshold=0.4,
        seed=7,
    )
    defense.fit(tiny_dataset)
    directory = defense.save(tmp_path / "mntd")

    restored = MNTDDefense.load(directory)
    assert restored.profile == defense.profile
    assert restored.architecture == defense.architecture
    assert restored.shadow_attacks == defense.shadow_attacks
    assert restored.num_queries == defense.num_queries
    assert restored.threshold == defense.threshold
    assert restored.seed == defense.seed
    np.testing.assert_array_equal(restored._query_images, defense._query_images)
    # exact equality, not allclose: the forest and query probes round-trip
    # byte for byte, so the score path has no rounding seam at all
    assert restored.score_model(trained_mlp, tiny_dataset) == defense.score_model(
        trained_mlp, tiny_dataset
    )


def test_mntd_precision_round_trips_and_back_compat(
    micro_profile, tiny_dataset, trained_mlp, tmp_path
):
    """A float32-fitted MNTD reloads in its tier; pre-split artifacts are float64."""
    import json

    from repro.defenses.model_level import MNTDDefense

    defense = MNTDDefense(
        profile=micro_profile,
        architecture="mlp",
        shadow_attacks=("badnets",),
        num_queries=4,
        seed=7,
        precision="float32",
    )
    defense.fit(tiny_dataset)
    assert all(s.classifier.dtype == np.float32 for s in defense.shadow_models)
    directory = defense.save(tmp_path / "mntd32")
    restored = MNTDDefense.load(directory)
    assert restored.precision == "float32"
    # the meta forest and query probes round-trip byte for byte regardless of
    # the tier the shadow pool trained in, so scores still match exactly
    assert restored.score_model(trained_mlp, tiny_dataset) == defense.score_model(
        trained_mlp, tiny_dataset
    )

    # artifacts written before the precision split carry no entry -> float64
    meta_path = directory / "mntd.meta.json"
    meta = json.loads(meta_path.read_text())
    del meta["precision"]
    meta_path.write_text(json.dumps(meta))
    assert MNTDDefense.load(directory).precision == "float64"


def test_mntd_defense_save_requires_fit(micro_profile, tmp_path):
    from repro.defenses.model_level import MNTDDefense

    with pytest.raises(ValueError, match="fitted"):
        MNTDDefense(profile=micro_profile, architecture="mlp").save(tmp_path / "mntd")
