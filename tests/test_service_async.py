"""Tests for the async/streaming audit service: bit-identical verdicts vs. the
synchronous batch path, submit/as_completed draining, bounded in-flight
backpressure, and the batch-audit seed-collision regression."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.detector import BpromDetector, DetectionResult
from repro.models.registry import build_classifier
from repro.runtime import AsyncAuditService, AuditService, ParallelExecutor


@pytest.fixture(scope="module")
def fitted_detector(micro_profile, tiny_dataset, tiny_test_dataset):
    detector = BpromDetector(profile=micro_profile, architecture="mlp", seed=0)
    detector.fit(tiny_dataset, tiny_dataset, tiny_test_dataset)
    return detector


@pytest.fixture(scope="module")
def catalogue(micro_profile, tiny_dataset):
    models = {}
    for index in range(4):
        name = f"vendor-{index}"
        model = build_classifier(
            "mlp",
            tiny_dataset.num_classes,
            image_size=tiny_dataset.image_size,
            rng=500 + index,
            name=name,
        )
        model.fit(tiny_dataset, micro_profile.classifier, rng=600 + index)
        models[name] = model
    return models


# ---------------------------------------------------------------------------
# bit-identical verdicts (acceptance criterion)
# ---------------------------------------------------------------------------

def test_stream_verdicts_bit_identical_to_batch_audit(fitted_detector, catalogue):
    batch = AuditService(fitted_detector).audit(catalogue)
    service = AsyncAuditService(
        fitted_detector, runtime=RuntimeConfig(workers=2), max_in_flight=2
    )
    streamed = {verdict.name: verdict for verdict in service.stream(catalogue)}
    assert set(streamed) == set(catalogue)
    for expected in batch:
        got = streamed[expected.name]
        assert got.backdoor_score == expected.backdoor_score
        assert got.is_backdoored == expected.is_backdoored
        assert got.prompted_accuracy == expected.prompted_accuracy


def test_audit_streaming_matches_batch_report_order(fitted_detector, catalogue):
    batch = AuditService(fitted_detector).audit(catalogue)
    service = AsyncAuditService(fitted_detector, runtime=RuntimeConfig(workers=2))
    report = service.audit_streaming(catalogue)
    assert [verdict.name for verdict in report] == [verdict.name for verdict in batch]
    assert [verdict.backdoor_score for verdict in report] == [
        verdict.backdoor_score for verdict in batch
    ]


def test_from_saved_stream_round_trip(fitted_detector, catalogue, tmp_path):
    path = fitted_detector.save(tmp_path / "detector")
    service = AsyncAuditService.from_saved(path, runtime=RuntimeConfig(workers=2))
    streamed = {verdict.name: verdict.backdoor_score for verdict in service.stream(catalogue)}
    expected = {
        verdict.name: verdict.backdoor_score
        for verdict in AuditService(fitted_detector).audit(catalogue)
    }
    assert streamed == expected


# ---------------------------------------------------------------------------
# submit / as_completed and serial degradation
# ---------------------------------------------------------------------------

def test_submit_and_as_completed_drain_the_queue(fitted_detector, catalogue):
    expected = {
        verdict.name: verdict.backdoor_score
        for verdict in AuditService(fitted_detector).audit(catalogue)
    }
    with AsyncAuditService(fitted_detector, runtime=RuntimeConfig(workers=2)) as service:
        jobs = [service.submit(key, model) for key, model in catalogue.items()]
        assert [job.key for job in jobs] == list(catalogue)
        drained = {job.key: job.result().backdoor_score for job in service.as_completed()}
    assert drained == expected
    assert service.in_flight == 0


def test_serial_stream_degrades_to_ordered_loop(fitted_detector, catalogue):
    service = AsyncAuditService(fitted_detector)  # serial-inherited executor
    names = [verdict.name for verdict in service.stream(catalogue)]
    assert names == list(catalogue)


def test_empty_catalogue_audit_and_stream(fitted_detector):
    assert AuditService(fitted_detector).audit({}) == []
    service = AsyncAuditService(fitted_detector, runtime=RuntimeConfig(workers=2))
    assert list(service.stream({})) == []
    assert list(service.as_completed()) == []


# ---------------------------------------------------------------------------
# backpressure
# ---------------------------------------------------------------------------

class _InstrumentedDetector:
    """Duck-typed detector that records peak inspect concurrency."""

    def __init__(self) -> None:
        self.executor = ParallelExecutor(1, "serial")
        self.active = 0
        self.peak = 0
        self.lock = threading.Lock()

    def inspect(self, model, query_function=None, target_eval=None, seed_key=None):
        with self.lock:
            self.active += 1
            self.peak = max(self.peak, self.active)
        time.sleep(0.02)
        with self.lock:
            self.active -= 1
        return DetectionResult(
            backdoor_score=float(model), is_backdoored=False, prompted_accuracy=1.0
        )


def test_stream_bounds_in_flight_jobs():
    detector = _InstrumentedDetector()
    service = AsyncAuditService(
        detector, runtime=RuntimeConfig(workers=4), max_in_flight=2
    )
    catalogue = {f"model-{index}": index for index in range(8)}
    verdicts = list(service.stream(catalogue))
    assert {verdict.name for verdict in verdicts} == set(catalogue)
    assert detector.peak <= 2, f"in-flight exceeded the cap: {detector.peak}"


def test_submit_applies_backpressure():
    detector = _InstrumentedDetector()
    with AsyncAuditService(
        detector, runtime=RuntimeConfig(workers=4), max_in_flight=2
    ) as service:
        for index in range(8):
            service.submit(f"model-{index}", index)
        results = {job.key: job.result().backdoor_score for job in service.as_completed()}
    assert results == {f"model-{index}": float(index) for index in range(8)}
    assert detector.peak <= 2


def test_max_in_flight_comes_from_runtime_config():
    detector = _InstrumentedDetector()
    service = AsyncAuditService(
        detector, runtime=RuntimeConfig(workers=4, max_in_flight=3)
    )
    assert service.max_in_flight == 3
    assert AsyncAuditService(detector, runtime=RuntimeConfig(workers=4)).max_in_flight == 8
    with pytest.raises(ValueError):
        AsyncAuditService(detector, max_in_flight=0)


# ---------------------------------------------------------------------------
# batch-audit seed-collision regression
# ---------------------------------------------------------------------------

def test_duplicate_named_models_get_independent_seeds(
    fitted_detector, micro_profile, tiny_dataset
):
    """Two catalogue entries sharing a ``.name`` must not share prompting seeds."""
    duplicates = []
    for rng in (700, 710):
        model = build_classifier(
            "mlp",
            tiny_dataset.num_classes,
            image_size=tiny_dataset.image_size,
            rng=rng,
            name="vendor-model",  # identical names, distinct weights
        )
        model.fit(tiny_dataset, micro_profile.classifier, rng=rng + 1)
        duplicates.append(model)
    catalogue = {"entry-a": duplicates[0], "entry-b": duplicates[1]}

    # the same physical model audited under two catalogue keys gets two
    # different prompting seeds (name-based seeding would collapse them)
    prompt_a = fitted_detector.prompt_suspicious(duplicates[0], seed_key="entry-a")
    prompt_b = fitted_detector.prompt_suspicious(duplicates[0], seed_key="entry-b")
    assert not np.array_equal(prompt_a.prompt.theta, prompt_b.prompt.theta)
    # ... and the derivation stays deterministic per key
    prompt_a_again = fitted_detector.prompt_suspicious(duplicates[0], seed_key="entry-a")
    np.testing.assert_array_equal(prompt_a.prompt.theta, prompt_a_again.prompt.theta)

    # batch audit threads the catalogue key through to the seed, so each
    # entry's verdict equals a standalone inspect under its key — for the
    # sync and async services alike
    expected = {
        key: fitted_detector.inspect(model, seed_key=key).backdoor_score
        for key, model in catalogue.items()
    }
    batch = AuditService(fitted_detector).audit(catalogue)
    assert {verdict.name: verdict.backdoor_score for verdict in batch} == expected
    streamed = AsyncAuditService(
        fitted_detector, runtime=RuntimeConfig(workers=2)
    ).stream(catalogue)
    assert {verdict.name: verdict.backdoor_score for verdict in streamed} == expected


def test_inspect_without_key_still_seeds_on_name(fitted_detector, catalogue):
    """Back-compat: the single-model path is unchanged by the key threading."""
    model = next(iter(catalogue.values()))
    by_default = fitted_detector.prompt_suspicious(model)
    by_name = fitted_detector.prompt_suspicious(model, seed_key=model.name)
    np.testing.assert_array_equal(by_default.prompt.theta, by_name.prompt.theta)
    with pytest.raises(ValueError):
        fitted_detector.inspect_many(list(catalogue.values()), keys=["just-one"])
