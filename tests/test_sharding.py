"""Tests for the sharded artifact store: home-shard placement, read-through
across shards, per-shard stats, rebalance/gc maintenance, and the acceptance
property that a warm multi-shard store skips all training regardless of which
shard holds each artefact."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.eval.harness import ExperimentContext
from repro.models.classifier import ImageClassifier
from repro.runtime import ArtifactStore, LockTimeout, ShardedArtifactStore
from repro.runtime.store import MISS


def _keys_for_every_shard(store: ShardedArtifactStore, per_shard: int = 1):
    """Key payloads covering each shard as home at least ``per_shard`` times."""
    found = {index: [] for index in range(len(store.shards))}
    probe = 0
    while any(len(keys) < per_shard for keys in found.values()):
        key = {"probe": probe}
        found[store.shard_index(key)].append(key)
        probe += 1
    return [key for keys in found.values() for key in keys[:per_shard]]


# ---------------------------------------------------------------------------
# placement and read-through
# ---------------------------------------------------------------------------

def test_writes_land_on_deterministic_home_shard(tmp_path):
    store = ShardedArtifactStore([tmp_path / "a", tmp_path / "b", tmp_path / "c"])
    for key in _keys_for_every_shard(store):
        with store.open_write("demo", key) as artifact:
            artifact.save_json("value", key)
        home = store.shard_for(key)
        assert home.contains("demo", key)
        assert sum(shard.contains("demo", key) for shard in store.shards) == 1
        # a fresh instance over the same roots agrees on placement
        again = ShardedArtifactStore([tmp_path / "a", tmp_path / "b", tmp_path / "c"])
        assert again.shard_index(key) == store.shard_index(key)


def test_read_through_finds_artifacts_on_any_shard(tmp_path):
    store = ShardedArtifactStore([tmp_path / "a", tmp_path / "b"])
    keys = _keys_for_every_shard(store, per_shard=2)
    for key in keys:
        with store.open_write("demo", key) as artifact:
            artifact.save_arrays("blob", {"x": np.full(3, float(key["probe"]))})
    # reversing the shard list flips every key's home directory, so every
    # lookup must fall through to the non-home shard
    reversed_store = ShardedArtifactStore([tmp_path / "b", tmp_path / "a"])
    for key in keys:
        assert reversed_store.contains("demo", key)
        value = reversed_store.try_load("demo", key, lambda a: a.load_arrays("blob"))
        assert value is not MISS
        np.testing.assert_array_equal(value["x"], np.full(3, float(key["probe"])))
    assert reversed_store.hits == len(keys)
    assert reversed_store.try_load("demo", {"absent": 1}, lambda a: None) is MISS
    assert reversed_store.misses == 1


def test_corrupt_home_copy_falls_through_to_intact_replica(tmp_path):
    """A corrupt copy on one shard must not mask a good replica on another."""
    store = ShardedArtifactStore([tmp_path / "a", tmp_path / "b"])
    key = {"k": 1}
    # replicate the artifact on both shards (two independently warmed roots)
    for shard in store.shards:
        with ArtifactStore(shard.root).open_write("demo", key) as artifact:
            artifact.save_arrays("blob", {"x": np.ones(3)})
    # corrupt the copy the home-first probe reaches first
    home = store.shard_for(key)
    (home.directory_for("demo", key) / "blob.npz").unlink()
    with pytest.warns(UserWarning, match="corrupt"):
        value = store.try_load("demo", key, lambda a: a.load_arrays("blob"))
    assert value is not MISS, "intact replica on the other shard must serve the read"
    np.testing.assert_array_equal(value["x"], np.ones(3))
    assert store.hits == 1
    assert not home.contains("demo", key)  # the corrupt copy was discarded


def test_per_shard_stats(tmp_path):
    store = ShardedArtifactStore([tmp_path / "a", tmp_path / "b"])
    keys = _keys_for_every_shard(store)
    for key in keys:
        with store.open_write("demo", key) as artifact:
            artifact.save_json("value", 1)
        assert store.try_load("demo", key, lambda a: a.load_json("value")) == 1
    stats = store.stats()
    assert set(stats) == {str(tmp_path / "a"), str(tmp_path / "b")}
    assert all(entry == {"hits": 1, "misses": 0, "artifacts": 1} for entry in stats.values())
    assert store.hits == 2 and store.misses == 0


def test_sharded_fetch_behaves_like_single_store(tmp_path):
    store = ShardedArtifactStore([tmp_path / "a", tmp_path / "b"])
    builds = []

    def fetch():
        return store.fetch(
            "numbers",
            {"k": 1},
            build=lambda: builds.append(1) or {"x": np.ones(3)},
            save=lambda artifact, value: artifact.save_arrays("value", value),
            load=lambda artifact: artifact.load_arrays("value"),
        )

    first = fetch()
    second = fetch()
    assert len(builds) == 1
    np.testing.assert_array_equal(first["x"], second["x"])
    assert store.hits == 1 and store.misses == 1


def test_sharded_store_rejects_bad_config(tmp_path):
    with pytest.raises(ValueError):
        ShardedArtifactStore([])
    with pytest.raises(ValueError):
        ShardedArtifactStore([tmp_path / "a", tmp_path / "a"])
    # two spellings of one directory would make rebalance() self-destruct
    with pytest.raises(ValueError):
        ShardedArtifactStore([tmp_path / "a", tmp_path / "b" / ".." / "a"])


def test_single_path_becomes_one_shard(tmp_path):
    """A bare string/Path is one root, not a per-character sequence."""
    store = ShardedArtifactStore(str(tmp_path / "only"))
    assert [str(shard.root) for shard in store.shards] == [str(tmp_path / "only")]
    runtime = RuntimeConfig(shard_dirs=str(tmp_path / "only"))
    assert runtime.shard_dirs == (str(tmp_path / "only"),)
    # a bare Path is accepted the same way a bare str is
    assert RuntimeConfig(shard_dirs=tmp_path / "only").shard_dirs == (str(tmp_path / "only"),)


# ---------------------------------------------------------------------------
# maintenance: rebalance and gc
# ---------------------------------------------------------------------------

def test_rebalance_moves_artifacts_home(tmp_path):
    store = ShardedArtifactStore([tmp_path / "a", tmp_path / "b"])
    keys = _keys_for_every_shard(store, per_shard=2)
    for key in keys:
        with store.open_write("demo", key) as artifact:
            artifact.save_json("value", key["probe"])
    # under the reversed order every artifact sits on the wrong shard
    reversed_store = ShardedArtifactStore([tmp_path / "b", tmp_path / "a"])
    summary = reversed_store.rebalance()
    assert summary == {"moved": len(keys), "kept": 0, "dropped_duplicates": 0}
    for key in keys:
        assert reversed_store.shard_for(key).contains("demo", key)
        assert reversed_store.try_load("demo", key, lambda a: a.load_json("value")) == key["probe"]
    # idempotent: a second pass keeps everything in place
    assert reversed_store.rebalance() == {
        "moved": 0,
        "kept": len(keys),
        "dropped_duplicates": 0,
    }


def test_rebalance_drops_duplicate_copies(tmp_path):
    store = ShardedArtifactStore([tmp_path / "a", tmp_path / "b"])
    key = {"k": 1}
    with store.open_write("demo", key) as artifact:
        artifact.save_json("value", "home")
    # plant a stray copy of the same artifact on the other shard
    stray = store.shards[1 - store.shard_index(key)]
    with ArtifactStore(stray.root).open_write("demo", key) as artifact:
        artifact.save_json("value", "stray")
    summary = store.rebalance()
    assert summary["dropped_duplicates"] == 1
    assert store.try_load("demo", key, lambda a: a.load_json("value")) == "home"
    assert sum(shard.contains("demo", key) for shard in store.shards) == 1


def test_gc_sweeps_temp_dirs_and_corrupt_artifacts(tmp_path):
    store = ShardedArtifactStore([tmp_path / "a", tmp_path / "b"])
    key = {"k": 1}
    with store.open_write("demo", key) as artifact:
        artifact.save_json("value", 1)
    (tmp_path / "a" / "demo" / ".tmp-crashed-writer").mkdir(parents=True)
    corpse = tmp_path / "b" / "demo" / "deadbeefdeadbeefdead"
    corpse.mkdir(parents=True)
    (corpse / "value.json").write_text("{}")  # no manifest -> corrupt
    # grace_seconds=0: collect even freshly created leftovers
    assert store.gc(grace_seconds=0.0) == {"temp_dirs": 1, "corrupt_artifacts": 1}
    assert not (tmp_path / "a" / "demo" / ".tmp-crashed-writer").exists()
    assert not corpse.exists()
    assert store.contains("demo", key)
    assert store.gc(grace_seconds=0.0) == {"temp_dirs": 0, "corrupt_artifacts": 0}


def test_gc_grace_period_spares_live_writers(tmp_path):
    """A temp dir younger than the grace period belongs to an in-flight
    ``open_write`` (e.g. a registry ``get_or_fit``) and must survive gc."""
    store = ShardedArtifactStore([tmp_path / "a", tmp_path / "b"])
    fresh = tmp_path / "a" / "demo" / ".tmp-in-flight-writer"
    fresh.mkdir(parents=True)
    stale = tmp_path / "b" / "demo" / ".tmp-abandoned-writer"
    stale.mkdir(parents=True)
    hour_ago = time.time() - 3600
    os.utime(stale, (hour_ago, hour_ago))
    assert store.gc(grace_seconds=300.0) == {"temp_dirs": 1, "corrupt_artifacts": 0}
    assert fresh.exists()
    assert not stale.exists()


def test_maintenance_takes_the_advisory_lock(tmp_path):
    """gc/rebalance are serialised by the store's maintenance lock: a pass
    cannot start while another maintenance holder is active."""
    store = ShardedArtifactStore([tmp_path / "a", tmp_path / "b"])
    with store.maintenance_lock():
        with pytest.raises(LockTimeout):
            store.gc(lock_wait_seconds=0.05)
        with pytest.raises(LockTimeout):
            store.rebalance(lock_wait_seconds=0.05)
    # released: both passes run (and leave their own lock released behind them)
    assert store.gc(grace_seconds=0.0) == {"temp_dirs": 0, "corrupt_artifacts": 0}
    assert store.rebalance() == {"moved": 0, "kept": 0, "dropped_duplicates": 0}


def test_maintenance_ignores_the_locks_directory(tmp_path):
    """Lock files under ``.locks`` are not artifacts: stats, gc and rebalance
    must neither count nor collect them."""
    store = ShardedArtifactStore([tmp_path / "a", tmp_path / "b"])
    key = {"k": 1}
    with store.open_write("demo", key) as artifact:
        artifact.save_json("value", 1)
    lock_path = store.lock_path("demo", key)
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    lock_path.write_text("{}")
    assert store.gc(grace_seconds=0.0) == {"temp_dirs": 0, "corrupt_artifacts": 0}
    assert store.rebalance()["kept"] == 1
    assert lock_path.exists()
    for shard_stats in store.stats().values():
        assert shard_stats["artifacts"] <= 1


# ---------------------------------------------------------------------------
# disk-budget GC (byte-budgeted LRU eviction of whole artifacts)
# ---------------------------------------------------------------------------

def _write_blob(store, key, seed: int) -> None:
    with store.open_write("demo", key) as artifact:
        artifact.save_arrays("blob", {"x": np.random.default_rng(seed).random(256)})


def _age(store, key, seconds_ago: float) -> None:
    """Back-date an artifact's last-use stamp (the manifest mtime)."""
    stamp = time.time() - seconds_ago
    os.utime(store.directory_for("demo", key) / "artifact.json", (stamp, stamp))


def test_gc_kind_evicts_lru_until_under_budget(tmp_path):
    store = ArtifactStore(tmp_path)
    keys = [{"i": index} for index in range(4)]
    sizes = {}
    for index, key in enumerate(keys):
        _write_blob(store, key, index)
        _age(store, key, seconds_ago=4000 - 1000 * index)  # keys[0] is oldest
        sizes[index] = store._tree_nbytes(store.directory_for("demo", key))
    budget = sizes[2] + sizes[3]  # room for exactly the two newest
    result = store.gc_kind("demo", max_bytes=budget, grace_seconds=0.0)
    assert result["scanned"] == 4
    assert result["evicted"] == 2 and result["evicted_bytes"] == sizes[0] + sizes[1]
    assert result["bytes_after"] == result["bytes_before"] - result["evicted_bytes"]
    assert result["bytes_after"] <= budget
    assert not store.contains("demo", keys[0]) and not store.contains("demo", keys[1])
    assert store.contains("demo", keys[2]) and store.contains("demo", keys[3])
    # already under budget: a second pass is a no-op
    again = store.gc_kind("demo", max_bytes=budget, grace_seconds=0.0)
    assert again["evicted"] == 0 and again["bytes_after"] == result["bytes_after"]


def test_gc_touch_refreshes_lru_rank(tmp_path):
    """touch() is how serving paths vote: a just-served artifact must outlive
    an idle one even if it was written first."""
    store = ArtifactStore(tmp_path)
    old_but_hot, idle = {"i": 0}, {"i": 1}
    for index, key in enumerate((old_but_hot, idle)):
        _write_blob(store, key, index)
        _age(store, key, seconds_ago=4000 - 1000 * index)  # old_but_hot older
    assert store.touch("demo", old_but_hot)  # a worker just hydrated it
    size = store._tree_nbytes(store.directory_for("demo", idle))
    result = store.gc_kind("demo", max_bytes=size, grace_seconds=0.0)
    assert result["evicted"] == 1
    assert store.contains("demo", old_but_hot) and not store.contains("demo", idle)
    assert not store.touch("demo", idle)  # evicted: nothing left to stamp


def test_gc_never_evicts_locked_or_recently_used_artifacts(tmp_path):
    store = ArtifactStore(tmp_path)
    locked, graced, evictable = {"i": 0}, {"i": 1}, {"i": 2}
    for index, key in enumerate((locked, graced, evictable)):
        _write_blob(store, key, index)
    _age(store, locked, seconds_ago=10_000)
    _age(store, evictable, seconds_ago=9_000)
    # `locked` is under a fitter/loader's per-key advisory lock right now;
    # `graced` keeps its fresh write stamp (within the grace period)
    lock_path = store.lock_path("demo", locked)
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    lock_path.write_text("held")
    result = store.gc_kind("demo", max_bytes=0, grace_seconds=300.0)
    assert result["skipped_locked"] == 1 and result["skipped_grace"] == 1
    assert result["evicted"] == 1
    assert store.contains("demo", locked) and store.contains("demo", graced)
    assert not store.contains("demo", evictable)
    assert result["bytes_after"] > 0  # protected artifacts may exceed the budget


def test_gc_kind_serialised_by_maintenance_lock(tmp_path):
    store = ArtifactStore(tmp_path)
    with store.maintenance_lock():
        with pytest.raises(LockTimeout):
            store.gc_kind("demo", max_bytes=0, lock_wait_seconds=0.05)
    assert store.gc_kind("demo", max_bytes=0)["scanned"] == 0  # released


def test_sharded_gc_kind_respects_home_shard_locks(tmp_path):
    """Fitters lock a key on its *home* shard; the sharded GC must check that
    same path for every candidate, wherever the artifact copy lives."""
    store = ShardedArtifactStore([tmp_path / "a", tmp_path / "b"])
    keys = _keys_for_every_shard(store, per_shard=2)
    for index, key in enumerate(keys):
        _write_blob(store, key, index)
        _age(store, key, seconds_ago=10_000)
    protected = keys[0]
    lock_path = store.lock_path("demo", protected)  # the home-shard lock
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    lock_path.write_text("held")
    result = store.gc_kind("demo", max_bytes=0, grace_seconds=0.0)
    assert result["scanned"] == len(keys)
    assert result["skipped_locked"] == 1 and result["evicted"] == len(keys) - 1
    assert store.contains("demo", protected)
    assert sum(store.contains("demo", key) for key in keys) == 1


def test_sharded_touch_stamps_every_replica(tmp_path):
    store = ShardedArtifactStore([tmp_path / "a", tmp_path / "b"])
    key = {"k": 1}
    # replicate on both shards (two independently warmed roots)
    for shard in store.shards:
        with ArtifactStore(shard.root).open_write("demo", key) as artifact:
            artifact.save_json("value", 1)
        stamp = time.time() - 5000
        os.utime(shard.directory_for("demo", key) / "artifact.json", (stamp, stamp))
    assert store.touch("demo", key)
    for shard in store.shards:
        age = time.time() - (shard.directory_for("demo", key) / "artifact.json").stat().st_mtime
        assert age < 60, "every replica must carry the refreshed stamp"


# ---------------------------------------------------------------------------
# config wiring
# ---------------------------------------------------------------------------

def test_runtime_config_shard_dirs(tmp_path, monkeypatch):
    runtime = RuntimeConfig(shard_dirs=[str(tmp_path / "a"), str(tmp_path / "b")])
    assert runtime.shard_dirs == (str(tmp_path / "a"), str(tmp_path / "b"))
    assert runtime.persistent  # shard_dirs alone make the store persistent
    assert not runtime.with_overrides(cache=False).persistent
    store = ArtifactStore.from_config(runtime)
    assert isinstance(store, ShardedArtifactStore)
    assert [str(shard.root) for shard in store.shards] == list(runtime.shard_dirs)

    import os

    monkeypatch.setenv(
        "REPRO_SHARD_DIRS", os.pathsep.join([str(tmp_path / "x"), str(tmp_path / "y")])
    )
    monkeypatch.setenv("REPRO_MAX_IN_FLIGHT", "7")
    from_env = RuntimeConfig.from_env()
    assert from_env.shard_dirs == (str(tmp_path / "x"), str(tmp_path / "y"))
    assert from_env.max_in_flight == 7

    with pytest.raises(ValueError):
        RuntimeConfig(max_in_flight=0)


# ---------------------------------------------------------------------------
# acceptance: warm two-shard store skips all training, wherever artefacts live
# ---------------------------------------------------------------------------

def test_warm_two_shard_store_skips_all_training(micro_profile, tmp_path, monkeypatch):
    shard_a, shard_b = str(tmp_path / "shard-a"), str(tmp_path / "shard-b")
    profile = micro_profile.with_overrides(name="micro-sharded")

    warm = ExperimentContext(
        profile, seed=0, runtime=RuntimeConfig(shard_dirs=(shard_a, shard_b))
    )
    assert isinstance(warm.store, ShardedArtifactStore)
    detector = warm.detector(
        "cifar10", "stl10", "mlp", num_clean_shadows=1, num_backdoor_shadows=1
    )
    probe = warm.suspicious_model("cifar10", None, 0, "mlp")
    baseline_score = detector.inspect(probe.classifier).backdoor_score
    # the warm run actually spread artefacts across both roots
    populated = [
        root for root, entry in warm.store.stats().items() if entry["artifacts"] > 0
    ]
    assert len(populated) == 2, f"expected both shards populated, got {warm.store.stats()}"

    fit_calls = []
    original_fit = ImageClassifier.fit

    def counting_fit(self, *args, **kwargs):
        fit_calls.append(self.name)
        return original_fit(self, *args, **kwargs)

    monkeypatch.setattr(ImageClassifier, "fit", counting_fit)
    import repro.prompting.trainer as trainer_module

    prompt_calls = []
    original_prompt = trainer_module.train_prompt_whitebox

    def counting_prompt(*args, **kwargs):
        prompt_calls.append(1)
        return original_prompt(*args, **kwargs)

    monkeypatch.setattr(trainer_module, "train_prompt_whitebox", counting_prompt)

    # a fresh context with the shard order *reversed*: every artefact's home
    # shard flips, so each read must fall through to the other shard —
    # training is skipped regardless of which shard holds each artefact
    cold = ExperimentContext(
        profile, seed=0, runtime=RuntimeConfig(shard_dirs=(shard_b, shard_a))
    )
    restored = cold.detector(
        "cifar10", "stl10", "mlp", num_clean_shadows=1, num_backdoor_shadows=1
    )
    probe_again = cold.suspicious_model("cifar10", None, 0, "mlp")
    assert fit_calls == [], "warm sharded store must skip classifier training entirely"
    assert prompt_calls == [], "warm sharded store must skip prompt training entirely"
    assert cold.store.hits >= 1
    assert restored.inspect(probe_again.classifier).backdoor_score == baseline_score
