"""Tests for the stacked shadow-pool training engine (repro.nn.stacked)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.config import RuntimeConfig, TrainingConfig
from repro.core.detector import BpromDetector
from repro.core.shadow import ShadowModelFactory
from repro.models.registry import architecture_family, build_classifier
from repro.nn.stacked import (
    UnstackableModelError,
    fit_stacked,
    predict_proba_many,
    stack_modules,
    unstack_modules,
)
from repro.prompting.prompted import predict_source_proba_many


def _assert_pools_match(left, right, tolerance=1e-9):
    assert [s.is_backdoored for s in left] == [s.is_backdoored for s in right]
    assert [s.target_class for s in left] == [s.target_class for s in right]
    assert [s.attack_name for s in left] == [s.attack_name for s in right]
    for a, b in zip(left, right):
        assert a.clean_accuracy == pytest.approx(b.clean_accuracy, abs=tolerance)
        assert a.classifier.history.losses == pytest.approx(
            b.classifier.history.losses, abs=tolerance
        )
        state_a, state_b = a.classifier.state_dict(), b.classifier.state_dict()
        assert set(state_a) == set(state_b)
        for key in state_a:
            np.testing.assert_allclose(
                state_a[key], state_b[key], rtol=0.0, atol=tolerance, err_msg=key
            )


@pytest.mark.parametrize("architecture", ["mlp", "resnet18", "mobilenetv2", "vit"])
def test_stacked_pool_matches_sequential(micro_profile, tiny_dataset, architecture):
    profile = micro_profile
    if architecture != "mlp":
        # two epochs keep the conv/transformer variants fast; equivalence is
        # per-step, so the epoch count does not weaken the check
        profile = micro_profile.with_overrides(
            classifier=TrainingConfig(epochs=2, batch_size=16, learning_rate=1e-2)
        )
    sequential = ShadowModelFactory(
        profile=profile, architecture=architecture, seed=11, training_mode="sequential"
    ).build_pool(tiny_dataset, num_clean=2, num_backdoor=2)
    stacked = ShadowModelFactory(
        profile=profile, architecture=architecture, seed=11, training_mode="stacked"
    ).build_pool(tiny_dataset, num_clean=2, num_backdoor=2)
    _assert_pools_match(sequential, stacked)


def test_stacked_pool_with_sgd_matches_sequential(micro_profile, tiny_dataset):
    profile = micro_profile.with_overrides(
        classifier=TrainingConfig(epochs=3, batch_size=16, learning_rate=1e-2, optimizer="sgd")
    )
    sequential = ShadowModelFactory(
        profile=profile, architecture="mlp", seed=3, training_mode="sequential"
    ).build_pool(tiny_dataset, num_clean=1, num_backdoor=1)
    stacked = ShadowModelFactory(
        profile=profile, architecture="mlp", seed=3, training_mode="stacked"
    ).build_pool(tiny_dataset, num_clean=1, num_backdoor=1)
    _assert_pools_match(sequential, stacked)


def test_detector_verdicts_identical_across_modes(
    micro_profile, tiny_dataset, tiny_test_dataset
):
    def fit_and_inspect(mode):
        detector = BpromDetector(
            profile=micro_profile,
            architecture="mlp",
            seed=0,
            runtime=RuntimeConfig(shadow_training=mode),
        )
        detector.fit(tiny_dataset, tiny_dataset, tiny_test_dataset)
        suspicious = build_classifier(
            "mlp", tiny_dataset.num_classes, tiny_dataset.image_size, rng=99, name="sus"
        )
        suspicious.fit(tiny_dataset, micro_profile.classifier, rng=100)
        return detector.inspect(suspicious)

    sequential = fit_and_inspect("sequential")
    stacked = fit_and_inspect("stacked")
    assert stacked.backdoor_score == pytest.approx(sequential.backdoor_score, abs=1e-9)
    assert stacked.is_backdoored == sequential.is_backdoored
    assert stacked.prompted_accuracy == pytest.approx(
        sequential.prompted_accuracy, abs=1e-9
    )


def test_stacked_run_warms_cache_for_sequential_run(
    micro_profile, tiny_dataset, tiny_test_dataset, tmp_path
):
    """Artifact-store keys do not depend on the training mode (both directions)."""

    def fit(mode, cache_dir):
        detector = BpromDetector(
            profile=micro_profile,
            architecture="mlp",
            seed=0,
            runtime=RuntimeConfig(cache_dir=str(cache_dir), shadow_training=mode),
        )
        detector.fit(tiny_dataset, tiny_dataset, tiny_test_dataset)
        cached = {r.name: r.cached for r in detector.stage_reports}
        return detector, cached

    first, first_cached = fit("stacked", tmp_path / "a")
    assert first_cached["shadow"] is False
    second, second_cached = fit("sequential", tmp_path / "a")
    assert second_cached["shadow"] is True  # stacked run warmed the cache

    third, third_cached = fit("sequential", tmp_path / "b")
    assert third_cached["shadow"] is False
    fourth, fourth_cached = fit("stacked", tmp_path / "b")
    assert fourth_cached["shadow"] is True  # ... and vice versa

    for left, right in ((first, second), (third, fourth)):
        for a, b in zip(left.shadow_models, right.shadow_models):
            for key, value in a.classifier.state_dict().items():
                np.testing.assert_array_equal(value, b.classifier.state_dict()[key])


def test_training_mode_resolution(monkeypatch):
    factory = ShadowModelFactory(architecture="mlp")
    monkeypatch.delenv("REPRO_SHADOW_TRAINING", raising=False)
    # auto policy: CNN/MLP pools stay sequential, transformer pools stack
    assert factory.resolve_training_mode() == "sequential"
    assert ShadowModelFactory(architecture="vit").resolve_training_mode() == "stacked"
    # env var overrides the auto policy ...
    monkeypatch.setenv("REPRO_SHADOW_TRAINING", "stacked")
    assert factory.resolve_training_mode() == "stacked"
    # ... and an explicit constructor mode overrides the env var
    explicit = ShadowModelFactory(architecture="mlp", training_mode="sequential")
    assert explicit.resolve_training_mode() == "sequential"
    monkeypatch.setenv("REPRO_SHADOW_TRAINING", "bogus")
    with pytest.raises(ValueError):
        factory.resolve_training_mode()


def test_architecture_family():
    assert architecture_family("resnet18") == "cnn"
    assert architecture_family("mobilenetv2") == "cnn"
    assert architecture_family("swin") == "transformer"
    assert architecture_family("mlp") == "mlp"
    with pytest.raises(ValueError):
        architecture_family("alexnet")


def test_runtime_config_validates_shadow_training():
    assert RuntimeConfig(shadow_training="stacked").shadow_training == "stacked"
    assert RuntimeConfig(shadow_training="Stacked").shadow_training == "stacked"
    with pytest.raises(ValueError):
        RuntimeConfig(shadow_training="turbo")


def test_auto_mode_yields_to_parallel_executor(
    micro_profile, tiny_dataset, monkeypatch
):
    """Under "auto" a multi-worker executor outranks stacking; explicit
    "stacked" keeps the model-axis engine even when an executor is supplied."""
    import repro.core.shadow as shadow_mod
    from repro.runtime.executor import ParallelExecutor

    monkeypatch.delenv("REPRO_SHADOW_TRAINING", raising=False)
    calls = []
    original = shadow_mod.fit_stacked

    def recording_fit_stacked(*args, **kwargs):
        calls.append("stacked")
        return original(*args, **kwargs)

    monkeypatch.setattr(shadow_mod, "fit_stacked", recording_fit_stacked)
    profile = micro_profile.with_overrides(
        classifier=TrainingConfig(epochs=1, batch_size=16, learning_rate=1e-2)
    )
    executor = ParallelExecutor(2, "thread")

    auto = ShadowModelFactory(profile=profile, architecture="vit", seed=2)
    auto.build_pool(tiny_dataset, num_clean=1, num_backdoor=1, executor=executor)
    assert calls == []  # auto + parallel executor -> per-model fan-out

    forced = ShadowModelFactory(
        profile=profile, architecture="vit", seed=2, training_mode="stacked"
    )
    forced.build_pool(tiny_dataset, num_clean=1, num_backdoor=1, executor=executor)
    assert calls == ["stacked"]


def test_unstackable_fallback_uses_executor(micro_profile, tiny_dataset, monkeypatch):
    import repro.core.shadow as shadow_mod
    from repro.runtime.executor import ParallelExecutor

    def raise_unstackable(*args, **kwargs):
        raise UnstackableModelError("forced for the test")

    sequential = ShadowModelFactory(
        profile=micro_profile, architecture="mlp", seed=5, training_mode="sequential"
    ).build_pool(tiny_dataset, num_clean=1, num_backdoor=1)
    monkeypatch.setattr(shadow_mod, "fit_stacked", raise_unstackable)
    fallback = ShadowModelFactory(
        profile=micro_profile, architecture="mlp", seed=5, training_mode="stacked"
    ).build_pool(
        tiny_dataset, num_clean=1, num_backdoor=1, executor=ParallelExecutor(2, "thread")
    )
    _assert_pools_match(sequential, fallback, tolerance=0.0)


def test_stack_modules_rejects_mixed_or_unknown_modules():
    with pytest.raises(UnstackableModelError):
        stack_modules([nn.Linear(4, 2, rng=0), nn.ReLU()])

    class Custom(nn.Module):
        def forward(self, x):
            return x

    with pytest.raises(UnstackableModelError):
        stack_modules([Custom(), Custom()])
    with pytest.raises(UnstackableModelError):
        stack_modules([nn.Dropout(0.5, rng=0), nn.Dropout(0.5, rng=1)])


def test_stack_unstack_roundtrip_preserves_state(tiny_dataset):
    models = [
        build_classifier("resnet18", 4, image_size=12, rng=seed).model for seed in (0, 1, 2)
    ]
    originals = [m.state_dict() for m in models]
    stacked = stack_modules(models)
    unstack_modules(stacked, models)
    for model, original in zip(models, originals):
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(value, original[key])


def test_fit_stacked_rejects_mismatched_dataset_lengths(micro_profile, tiny_dataset):
    classifiers = [
        build_classifier("mlp", tiny_dataset.num_classes, tiny_dataset.image_size, rng=i)
        for i in range(2)
    ]
    short = tiny_dataset.subset(range(len(tiny_dataset) - 4))
    with pytest.raises(UnstackableModelError):
        fit_stacked(classifiers, [tiny_dataset, short], micro_profile.classifier, rngs=[0, 1])


def test_unstackable_pool_falls_back_to_sequential(micro_profile, tiny_dataset, monkeypatch):
    """A pool the engine cannot lift still trains, with sequential-identical results."""
    import repro.core.shadow as shadow_mod

    def raise_unstackable(*args, **kwargs):
        raise UnstackableModelError("forced for the test")

    sequential = ShadowModelFactory(
        profile=micro_profile, architecture="mlp", seed=5, training_mode="sequential"
    ).build_pool(tiny_dataset, num_clean=1, num_backdoor=1)
    monkeypatch.setattr(shadow_mod, "fit_stacked", raise_unstackable)
    fallback = ShadowModelFactory(
        profile=micro_profile, architecture="mlp", seed=5, training_mode="stacked"
    ).build_pool(tiny_dataset, num_clean=1, num_backdoor=1)
    _assert_pools_match(sequential, fallback, tolerance=0.0)


@pytest.mark.parametrize("architecture", ["mlp", "resnet18", "vit"])
def test_predict_proba_many_matches_sequential(tiny_dataset, architecture):
    classifiers = []
    for seed in range(3):
        classifier = build_classifier(
            architecture, tiny_dataset.num_classes, tiny_dataset.image_size, rng=seed
        )
        classifiers.append(classifier)
    images = tiny_dataset.images[:7]
    pooled = predict_proba_many(classifiers, images)
    assert pooled.shape == (3, 7, tiny_dataset.num_classes)
    for index, classifier in enumerate(classifiers):
        np.testing.assert_array_equal(pooled[index], classifier.predict_proba(images))


def test_predict_proba_many_per_model_inputs(tiny_dataset, rng):
    classifiers = [
        build_classifier("mlp", tiny_dataset.num_classes, tiny_dataset.image_size, rng=seed)
        for seed in range(2)
    ]
    per_model = rng.random((2, 5, *tiny_dataset.image_shape))
    pooled = predict_proba_many(classifiers, per_model, per_model=True)
    for index, classifier in enumerate(classifiers):
        np.testing.assert_array_equal(
            pooled[index], classifier.predict_proba(per_model[index])
        )
    with pytest.raises(ValueError):
        predict_proba_many(classifiers, per_model[:1], per_model=True)


def test_predict_source_proba_many_matches_per_model(
    micro_profile, tiny_dataset, trained_mlp
):
    from repro.prompting import train_prompt_whitebox

    prompted = [
        train_prompt_whitebox(trained_mlp, tiny_dataset, micro_profile.prompt, rng=seed)
        for seed in (0, 1)
    ]
    images = tiny_dataset.images[:6]
    pooled = predict_source_proba_many(prompted, images)
    for index, model in enumerate(prompted):
        np.testing.assert_array_equal(pooled[index], model.predict_source_proba(images))


def test_stacked_batchnorm_buffers_unstack_per_model(rng):
    layers = [nn.BatchNorm2d(3) for _ in range(2)]
    stacked = stack_modules(layers)
    x = rng.normal(size=(2, 4, 3, 5, 5))
    stacked.train()
    stacked(x)
    unstack_modules(stacked, layers)
    for index, layer in enumerate(layers):
        reference = nn.BatchNorm2d(3)
        reference.train()
        reference(x[index])
        np.testing.assert_array_equal(
            layer.get_buffer("running_mean"), reference.get_buffer("running_mean")
        )
        np.testing.assert_array_equal(
            layer.get_buffer("running_var"), reference.get_buffer("running_var")
        )


@pytest.mark.parametrize("architecture", ["mlp", "resnet18"])
def test_stacked_pool_matches_sequential_in_float32_tier(
    micro_profile, tiny_dataset, architecture
):
    """float32 pools trade bit-identity for speed: the stacked and sequential
    twins may pick different conv engines, so they agree only to float32
    accumulation tolerance — but the clean/backdoor labels, attack targets and
    training trajectories must still line up."""
    profile = micro_profile.with_overrides(
        classifier=TrainingConfig(epochs=2, batch_size=16, learning_rate=1e-2)
    )
    sequential = ShadowModelFactory(
        profile=profile, architecture=architecture, seed=11,
        training_mode="sequential", precision="float32",
    ).build_pool(tiny_dataset, num_clean=2, num_backdoor=2)
    stacked = ShadowModelFactory(
        profile=profile, architecture=architecture, seed=11,
        training_mode="stacked", precision="float32",
    ).build_pool(tiny_dataset, num_clean=2, num_backdoor=2)
    for pool in (sequential, stacked):
        for shadow in pool:
            assert shadow.classifier.dtype == np.float32
    _assert_pools_match(sequential, stacked, tolerance=5e-2)


def test_float32_pool_matches_float64_pool_within_tolerance(
    micro_profile, tiny_dataset
):
    """The two precision tiers of the *same* factory configuration must stay
    interchangeable at the level the detector consumes them: near-identical
    weights, identical shadow labels."""
    profile = micro_profile.with_overrides(
        classifier=TrainingConfig(epochs=2, batch_size=16, learning_rate=1e-2)
    )
    pools = {}
    for precision in ("float64", "float32"):
        pools[precision] = ShadowModelFactory(
            profile=profile, architecture="resnet18", seed=11,
            training_mode="sequential", precision=precision,
        ).build_pool(tiny_dataset, num_clean=1, num_backdoor=1)
    assert pools["float64"][0].classifier.dtype == np.float64
    assert pools["float32"][0].classifier.dtype == np.float32
    _assert_pools_match(pools["float64"], pools["float32"], tolerance=5e-2)
