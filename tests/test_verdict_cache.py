"""Tests for the fleet-scale verdict cache.

Acceptance properties from the issue: cached verdicts are bit-identical to
the cold path (scores exact after the JSON round trip, labels and metadata
equal); a warm resubmission spends zero black-box queries; and two threads
*and* two processes racing on one model fingerprint perform exactly one
inspection.  Plus the policy boundaries: weighted-LRU eviction with decay,
TTL expiry in both tiers, and detector-digest bumps invalidating entries.
"""

from __future__ import annotations

import math
import multiprocessing
import threading
import time

import pytest

from repro.config import RuntimeConfig
from repro.models.registry import build_classifier
from repro.runtime import AuditGateway, AuditService, ShardedArtifactStore
from repro.runtime.registry import DetectorSpec
from repro.runtime.service import AuditVerdict
from repro.runtime.store import ArtifactStore
from repro.runtime.verdict_cache import (
    VERDICT_KIND,
    VerdictCache,
    detector_digest,
    model_fingerprint,
    verdict_cache_key,
)


def make_verdict(name="vendor-0", score=0.625, accuracy=0.75, queries=48, calls=3):
    return AuditVerdict(
        name=name,
        backdoor_score=score,
        is_backdoored=score >= 0.5,
        prompted_accuracy=accuracy,
        query_count=queries,
        query_calls=calls,
    )


def memory_cache(**kwargs):
    """A cache with no persistence tier (disabled store)."""
    return VerdictCache(store=ArtifactStore(None, enabled=False), **kwargs)


def disk_cache(tmp_path, **kwargs):
    return VerdictCache(store=ArtifactStore(tmp_path / "store"), **kwargs)


# ---------------------------------------------------------------------------
# fingerprints and keys
# ---------------------------------------------------------------------------

def test_model_fingerprint_ignores_display_name(tiny_dataset):
    build = lambda name: build_classifier(
        "mlp", tiny_dataset.num_classes, image_size=tiny_dataset.image_size,
        rng=3, name=name,
    )
    assert model_fingerprint(build("vendor-a")) == model_fingerprint(build("vendor-b"))


def test_model_fingerprint_tracks_weights(tiny_dataset, micro_profile):
    model = build_classifier(
        "mlp", tiny_dataset.num_classes, image_size=tiny_dataset.image_size, rng=3
    )
    before = model_fingerprint(model)
    model.fit(tiny_dataset, micro_profile.classifier, rng=4)
    assert model_fingerprint(model) != before
    other_init = build_classifier(
        "mlp", tiny_dataset.num_classes, image_size=tiny_dataset.image_size, rng=5
    )
    assert model_fingerprint(other_init) != before


def test_cache_key_carries_all_three_coordinates():
    key = verdict_cache_key("fp", "digest", "float32")
    assert key == {"fingerprint": "fp", "detector_digest": "digest", "precision": "float32"}


def test_detector_digest_tracks_threshold():
    class FakeDetector:
        threshold = 0.5
        seed = 0

    a = FakeDetector()
    b = FakeDetector()
    assert detector_digest(a) == detector_digest(b)
    b.threshold = 0.9
    assert detector_digest(a) != detector_digest(b)


# ---------------------------------------------------------------------------
# tiers: round trip, promotion, eviction, TTL
# ---------------------------------------------------------------------------

def test_store_round_trip_is_bit_identical(tmp_path):
    key = verdict_cache_key("fp", "digest", "float64")
    minted = make_verdict(score=1.0 / 3.0, accuracy=2.0 / 7.0)
    disk_cache(tmp_path).store_verdict(key, minted)

    fresh = disk_cache(tmp_path)  # cold memory tier: must come off disk
    served = fresh.lookup(key, "resubmitted")
    assert served is not None
    assert served.cache == "store"
    assert served.name == "resubmitted"
    assert served.backdoor_score == minted.backdoor_score  # exact, not approx
    assert served.prompted_accuracy == minted.prompted_accuracy
    assert served.is_backdoored == minted.is_backdoored
    assert served.query_count == minted.query_count
    assert served.query_calls == minted.query_calls
    # the store hit promoted the entry: the next lookup is a memory hit
    assert fresh.lookup(key, "again").cache == "memory"
    assert fresh.stats()["store_hits"] == 1 and fresh.stats()["memory_hits"] == 1


def test_nan_accuracy_survives_the_round_trip(tmp_path):
    """MNTD verdicts carry ``prompted_accuracy=nan``; JSON must not choke."""
    key = verdict_cache_key("fp", "digest", "float64")
    disk_cache(tmp_path).store_verdict(key, make_verdict(accuracy=float("nan")))
    served = disk_cache(tmp_path).lookup(key, "resub")
    assert math.isnan(served.prompted_accuracy)


def test_served_verdicts_do_not_inherit_provenance(tmp_path):
    """Tiers store the cold form: a memory hit promoted from the store tier
    must serve as ``memory``, not replay the first serving's ``store``."""
    cache = memory_cache()
    key = verdict_cache_key("fp", "digest", "float64")
    cache.store_verdict(key, make_verdict())
    first = cache.lookup(key, "one")
    cache.store_verdict(verdict_cache_key("fp2", "digest", "float64"), first)
    again = cache.lookup(verdict_cache_key("fp2", "digest", "float64"), "two")
    assert first.cache == "memory" and again.cache == "memory"


def entry_nbytes():
    """The memory-tier charge of one cached verdict, measured not assumed."""
    probe = memory_cache()
    probe.store_verdict(verdict_cache_key("probe", "d", "float64"), make_verdict())
    return probe.memory_bytes


def test_weighted_lru_evicts_cold_entries_first():
    cache = memory_cache(max_bytes=int(2.5 * entry_nbytes()))  # room for 2
    key_a = verdict_cache_key("a", "d", "float64")
    key_b = verdict_cache_key("b", "d", "float64")
    key_c = verdict_cache_key("c", "d", "float64")
    cache.store_verdict(key_a, make_verdict("a"))
    cache.store_verdict(key_b, make_verdict("b"))
    for _ in range(3):  # hits weight a up; b stays at its insert weight
        assert cache.lookup(key_a, "a") is not None
    cache.store_verdict(key_c, make_verdict("c"))
    assert cache.stats()["evictions"] >= 1
    assert cache.lookup(key_b, "b") is None  # the cold entry was the victim
    assert cache.lookup(key_a, "a") is not None
    assert cache.lookup(key_c, "c") is not None


def test_eviction_decays_weights_so_hot_entries_cool_off():
    cache = memory_cache(max_bytes=int(2.5 * entry_nbytes()))
    key_a = verdict_cache_key("a", "d", "float64")
    cache.store_verdict(key_a, make_verdict("a"))
    for _ in range(8):
        cache.lookup(key_a, "a")
    weight_before = next(iter(cache._entries.values())).weight
    # churn fresh entries through: each eviction halves every weight
    for marker in "bcde":
        cache.store_verdict(verdict_cache_key(marker, "d", "float64"), make_verdict(marker))
    weight_after = cache._entries[
        next(d for d in cache._entries if cache._entries[d].verdict.name == "a")
    ].weight
    assert weight_after < weight_before


def test_zero_byte_budget_disables_the_memory_tier(tmp_path):
    cache = disk_cache(tmp_path, max_bytes=0)
    key = verdict_cache_key("fp", "digest", "float64")
    cache.store_verdict(key, make_verdict())
    assert cache.stats()["entries"] == 0
    assert cache.lookup(key, "resub").cache == "store"  # persistence still works


def test_ttl_expires_the_memory_tier():
    now = [1000.0]
    cache = memory_cache(ttl_seconds=60.0, clock=lambda: now[0])
    key = verdict_cache_key("fp", "digest", "float64")
    cache.store_verdict(key, make_verdict())
    now[0] += 59.0
    assert cache.lookup(key, "warm") is not None
    now[0] += 2.0  # past the bound
    assert cache.lookup(key, "stale") is None
    assert cache.stats()["expirations"] == 1


def test_ttl_expires_the_store_tier_and_reaudit_can_land(tmp_path):
    now = [1000.0]
    cache = disk_cache(tmp_path, ttl_seconds=60.0, clock=lambda: now[0])
    key = verdict_cache_key("fp", "digest", "float64")
    cache.store_verdict(key, make_verdict(score=0.25))
    now[0] += 61.0
    fresh = disk_cache(tmp_path, ttl_seconds=60.0, clock=lambda: now[0])
    assert fresh.lookup(key, "stale") is None
    assert fresh.stats()["expirations"] == 1
    # the expired entry was deleted, so (first-wins open_write) the re-audit's
    # fresh verdict actually persists instead of being silently discarded
    assert not fresh.store.contains(VERDICT_KIND, key)
    fresh.store_verdict(key, make_verdict(score=0.75))
    assert disk_cache(tmp_path).lookup(key, "reaudited").backdoor_score == 0.75


def test_detector_refit_bumps_the_digest_and_misses(tmp_path):
    cache = disk_cache(tmp_path)
    before = verdict_cache_key("fp", "digest-before-refit", "float64")
    cache.store_verdict(before, make_verdict())
    after = verdict_cache_key("fp", "digest-after-refit", "float64")
    assert cache.lookup(after, "resub") is None  # same model, refit detector
    assert cache.lookup(before, "resub") is not None


def test_precision_tiers_never_share_entries(tmp_path):
    cache = disk_cache(tmp_path)
    cache.store_verdict(verdict_cache_key("fp", "d", "float64"), make_verdict())
    assert cache.lookup(verdict_cache_key("fp", "d", "float32"), "resub") is None


def test_disabled_cache_is_inert(tmp_path):
    cache = disk_cache(tmp_path, enabled=False)
    key = verdict_cache_key("fp", "d", "float64")
    cache.store_verdict(key, make_verdict())
    assert cache.lookup(key, "resub") is None
    computed = cache.get_or_compute(key, "resub", lambda: make_verdict(score=0.125))
    assert computed.backdoor_score == 0.125


def test_runtime_knobs_reach_the_cache(tmp_path):
    runtime = RuntimeConfig(
        cache_dir=str(tmp_path),
        verdict_cache=True,
        verdict_cache_bytes=4096,
        verdict_cache_ttl=30.0,
    )
    cache = VerdictCache(runtime=runtime)
    assert cache.max_bytes == 4096
    assert cache.ttl_seconds == 30.0
    assert cache.store.enabled


def test_sharded_store_delete_removes_every_replica(tmp_path):
    store = ShardedArtifactStore([tmp_path / "s0", tmp_path / "s1"])
    key = verdict_cache_key("fp", "d", "float64")
    # plant the artifact on BOTH shards (a rebalance-era stray replica):
    # delete must remove every copy or the stray resurrects the entry
    for shard in store.shards:
        with shard.open_write(VERDICT_KIND, key) as artifact:
            artifact.save_json("verdict", {"payload": "stray"})
    assert store.delete(VERDICT_KIND, key)
    assert not store.contains(VERDICT_KIND, key)
    assert all(not shard.contains(VERDICT_KIND, key) for shard in store.shards)


# ---------------------------------------------------------------------------
# single flight: two threads, two processes -> exactly one inspection
# ---------------------------------------------------------------------------

def test_two_threads_same_fingerprint_one_inspection(tmp_path):
    cache = disk_cache(tmp_path)
    key = verdict_cache_key("fp", "digest", "float64")
    inspecting = threading.Event()
    release = threading.Event()
    computed = []

    def compute():
        computed.append(threading.get_ident())
        inspecting.set()
        assert release.wait(timeout=30.0)
        return make_verdict()

    results = {}

    def submit(name):
        results[name] = cache.get_or_compute(key, name, compute)

    leader = threading.Thread(target=submit, args=("leader",))
    leader.start()
    assert inspecting.wait(timeout=30.0)  # the leader is mid-inspection
    follower = threading.Thread(target=submit, args=("follower",))
    follower.start()
    while cache.stats()["dedup_hits"] == 0 and follower.is_alive():
        time.sleep(0.005)  # the follower has joined the flight
    release.set()
    leader.join(timeout=30.0)
    follower.join(timeout=30.0)

    assert len(computed) == 1  # exactly one inspection
    stats = cache.stats()
    assert stats["inspections"] == 1
    assert stats["dedup_hits"] == 1
    assert stats["misses"] == 1
    assert results["leader"].backdoor_score == results["follower"].backdoor_score
    assert results["follower"].cache == "dedup"
    assert results["follower"].name == "follower"


def test_leader_failure_propagates_and_releases_the_claim(tmp_path):
    cache = disk_cache(tmp_path)
    key = verdict_cache_key("fp", "digest", "float64")

    def explode():
        raise RuntimeError("vendor endpoint down")

    with pytest.raises(RuntimeError, match="endpoint down"):
        cache.get_or_compute(key, "boom", explode)
    # the claim was released: a retry leads a fresh flight and succeeds
    verdict = cache.get_or_compute(key, "retry", make_verdict)
    assert verdict.backdoor_score == make_verdict().backdoor_score
    assert cache.stats()["inspections"] == 1


def _process_worker(root, start, side_file, scores):
    start.wait(timeout=30.0)
    cache = VerdictCache(store=ArtifactStore(root))
    key = verdict_cache_key("fp", "digest", "float64")

    def compute():
        with open(side_file, "a") as handle:
            handle.write("inspected\n")
        time.sleep(0.2)  # widen the race window for the other process
        return make_verdict()

    verdict = cache.compute_through_store(key, "proc", compute)
    scores.put(float(verdict.backdoor_score))


def test_two_processes_same_fingerprint_one_inspection(tmp_path):
    context = multiprocessing.get_context("fork")
    start = context.Event()
    scores = context.Queue()
    side_file = tmp_path / "inspections.log"
    side_file.touch()
    root = tmp_path / "store"
    workers = [
        context.Process(target=_process_worker, args=(root, start, side_file, scores))
        for _ in range(2)
    ]
    for worker in workers:
        worker.start()
    start.set()  # release both at once so they race on the advisory lock
    results = [scores.get(timeout=60.0) for _ in workers]
    for worker in workers:
        worker.join(timeout=60.0)
        assert worker.exitcode == 0

    assert side_file.read_text().count("inspected") == 1  # exactly one
    assert results[0] == results[1] == make_verdict().backdoor_score


# ---------------------------------------------------------------------------
# service and gateway integration: warm resubmission economics
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def cached_gateway(micro_profile, tiny_dataset, tiny_test_dataset, tmp_path_factory):
    runtime = RuntimeConfig(
        cache_dir=str(tmp_path_factory.mktemp("cached-gateway")),
        verdict_cache=True,
    )
    gateway = AuditGateway(runtime=runtime, max_in_flight=2)
    gateway.register_tenant(
        "tabular-mlp",
        DetectorSpec(defense="bprom", profile=micro_profile, architecture="mlp", seed=0),
        tiny_dataset,
        tiny_test_dataset,
        tiny_test_dataset,
    )
    yield gateway
    gateway.close()


@pytest.fixture(scope="module")
def suspect_model(micro_profile, tiny_dataset):
    model = build_classifier(
        "mlp", tiny_dataset.num_classes, image_size=tiny_dataset.image_size,
        rng=700, name="suspect",
    )
    model.fit(tiny_dataset, micro_profile.classifier, rng=701)
    return model


def test_gateway_warm_resubmission_is_free_and_bit_identical(
    cached_gateway, suspect_model
):
    [cold] = list(cached_gateway.stream([("suspect", suspect_model)]))
    assert cold.cache == "cold"
    tenant_stats = cached_gateway.stats()["tenants"]["tabular-mlp"]
    queries_after_cold = tenant_stats["query_count"]
    assert queries_after_cold > 0

    [warm] = list(cached_gateway.stream([("suspect-resubmitted", suspect_model)]))
    assert warm.cache in ("memory", "store")
    assert warm.name == "suspect-resubmitted"
    # bit-identical to the cold path, not merely close
    assert warm.backdoor_score == cold.backdoor_score
    assert warm.is_backdoored == cold.is_backdoored
    assert warm.prompted_accuracy == cold.prompted_accuracy
    assert warm.query_count == cold.query_count  # describes the original audit

    stats = cached_gateway.stats()
    tenant_stats = stats["tenants"]["tabular-mlp"]
    # zero queries spent on the warm serving: that is the amortisation
    assert tenant_stats["query_count"] == queries_after_cold
    assert tenant_stats["cache_hits"] == 1
    served = tenant_stats["accepted"] + tenant_stats["rejected"]
    assert served == 2
    assert tenant_stats["amortized_queries_per_verdict"] == pytest.approx(
        queries_after_cold / served
    )
    assert stats["amortized_queries_per_verdict"] == pytest.approx(
        queries_after_cold / served
    )
    cache_stats = stats["verdict_cache"]
    assert cache_stats["inspections"] == 1
    assert cache_stats["memory_hits"] + cache_stats["store_hits"] >= 1
    assert cache_stats["hit_rate"] > 0.0


def test_gateway_submit_serves_warm_hits_without_a_budget_slot(
    cached_gateway, suspect_model
):
    job = cached_gateway.submit("suspect-direct", suspect_model)
    assert job.future.done()  # completed synchronously off a cache tier
    [verdict] = list(cached_gateway.as_completed())
    assert verdict.cache in ("memory", "store")
    assert cached_gateway.in_flight == 0


def test_batch_service_dedups_duplicate_uploads(cached_gateway, suspect_model):
    """The same weights under two catalogue keys are inspected once."""
    detector = cached_gateway.tenants["tabular-mlp"].entry.detector
    cache = memory_cache()
    service = AuditService(detector, verdict_cache=cache)
    verdicts = service.audit({"upload-a": suspect_model, "upload-b": suspect_model})
    by_name = {verdict.name: verdict for verdict in verdicts}
    assert by_name["upload-a"].cache == "cold"
    assert by_name["upload-b"].cache == "dedup"
    assert by_name["upload-a"].backdoor_score == by_name["upload-b"].backdoor_score
    stats = cache.stats()
    assert stats["inspections"] == 1
    assert stats["dedup_hits"] == 1 and stats["misses"] == 1
    # a second audit of the same catalogue is served entirely warm
    again = service.audit({"upload-a": suspect_model})
    assert again[0].cache == "memory"
    assert cache.stats()["inspections"] == 1
