"""Tests for the tenant worker-pool layer: executor parity across backends,
:class:`WorkerPool` lifecycle, and :class:`DetectorRef` hydration.

The process backend's whole contract is that it is *invisible* to results:
per-task seeds derive from stable task identities, detectors hydrate from the
store bit-identically, and the only observable difference is wall-clock time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.runtime import DetectorRegistry, ParallelExecutor
from repro.runtime.registry import DetectorSpec
from repro.runtime.workers import _HYDRATED, DetectorRef, WorkerPool, resolve_detector
from repro.utils.rng import derive_seed

BACKENDS = ("serial", "thread", "process")


def _seeded_draw(item):
    """Module-level so process pools can pickle it by qualified name; the
    per-task seed derives from the task identity, like every runtime stage."""
    index, experiment_seed = item
    rng = np.random.default_rng(derive_seed(experiment_seed, "parity-task", index))
    return float(rng.random())


# ---------------------------------------------------------------------------
# ParallelExecutor parity: serial / thread / process
# ---------------------------------------------------------------------------

def test_executor_map_results_identical_across_backends():
    items = [(index, 123) for index in range(6)]
    expected = [_seeded_draw(item) for item in items]
    for backend in BACKENDS:
        executor = ParallelExecutor(workers=2, backend=backend)
        assert executor.map(_seeded_draw, items) == expected, backend


def test_executor_session_results_identical_across_backends():
    items = [(index, 321) for index in range(6)]
    expected = [_seeded_draw(item) for item in items]
    for backend in BACKENDS:
        with ParallelExecutor(workers=2, backend=backend).session() as session:
            futures = [session.submit(_seeded_draw, item) for item in items]
            assert [future.result() for future in futures] == expected, backend


# ---------------------------------------------------------------------------
# WorkerPool lifecycle
# ---------------------------------------------------------------------------

def test_non_parallel_pool_runs_inline():
    with WorkerPool(workers=1, backend="thread") as pool:
        assert not pool.parallel and not pool.started
        session = pool.session()
        assert not session.parallel  # poolless: submits resolve synchronously
        future = session.submit(_seeded_draw, (0, 7))
        assert future.done() and future.result() == _seeded_draw((0, 7))
        assert pool.started


def test_parallel_pool_shares_one_session_and_counts_tasks():
    with WorkerPool(workers=2, backend="thread") as pool:
        assert pool.parallel
        session = pool.session()
        assert session is pool.session()  # every tenant shares the one session
        futures = [session.submit(_seeded_draw, (index, 9)) for index in range(4)]
        assert [f.result() for f in futures] == [_seeded_draw((i, 9)) for i in range(4)]
        stats = pool.stats()
        assert stats == {"backend": "thread", "workers": 2, "started": True, "tasks": 4}


def test_process_pool_runs_module_level_tasks():
    with WorkerPool(workers=2, backend="process") as pool:
        session = pool.session()
        futures = [session.submit(_seeded_draw, (index, 11)) for index in range(3)]
        assert [f.result() for f in futures] == [_seeded_draw((i, 11)) for i in range(3)]


def test_pool_close_is_idempotent_and_final():
    pool = WorkerPool(workers=2, backend="thread")
    pool.session()
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        pool.session()


def test_pool_rejects_bad_config():
    with pytest.raises(ValueError):
        WorkerPool(workers=0)
    with pytest.raises(ValueError):
        WorkerPool(backend="gpu")


def test_pool_from_config():
    assert WorkerPool.from_config(None).stats()["backend"] == "thread"
    runtime = RuntimeConfig(workers=3, gateway_backend="process")
    pool = WorkerPool.from_config(runtime)
    assert pool.backend == "process" and pool.workers == 3  # falls back to workers
    pool = WorkerPool.from_config(runtime.with_overrides(gateway_workers=5))
    assert pool.workers == 5  # gateway_workers wins when set


# ---------------------------------------------------------------------------
# DetectorRef hydration
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def hydration_setup(micro_profile, tiny_dataset, tiny_test_dataset, tmp_path_factory):
    """A fitted detector in a store, plus the ref a process worker would get."""
    runtime = RuntimeConfig(cache_dir=str(tmp_path_factory.mktemp("workers-store")))
    registry = DetectorRegistry(runtime=runtime)
    spec = DetectorSpec(defense="bprom", profile=micro_profile, architecture="mlp", seed=0)
    entry = registry.get_or_fit(spec, tiny_dataset, tiny_test_dataset, tiny_test_dataset)
    ref = DetectorRef(
        key_hash=entry.key_hash,
        key=entry.key,
        spec=spec,
        runtime=runtime.with_overrides(workers=1, backend="serial"),
    )
    return entry, ref


def test_resolve_detector_hydrates_once_and_scores_bit_identically(
    hydration_setup, trained_mlp
):
    entry, ref = hydration_setup
    _HYDRATED.clear()
    hydrated = resolve_detector(ref)
    assert hydrated is not entry.detector  # a fresh load, not the fitted object
    assert resolve_detector(ref) is hydrated  # per-process cache serves repeats
    reference = entry.detector.inspect(trained_mlp, seed_key="probe")
    warm = hydrated.inspect(trained_mlp, seed_key="probe")
    assert warm.backdoor_score == reference.backdoor_score  # exact, not approx
    assert warm.is_backdoored == reference.is_backdoored
    _HYDRATED.clear()


def test_resolve_detector_never_refits_on_miss(hydration_setup, tmp_path):
    _, ref = hydration_setup
    _HYDRATED.clear()
    pointed_at_empty_store = DetectorRef(
        key_hash=ref.key_hash,
        key=ref.key,
        spec=ref.spec,
        runtime=RuntimeConfig(cache_dir=str(tmp_path), workers=1, backend="serial"),
    )
    with pytest.raises(RuntimeError, match="refitting in a pool worker is forbidden"):
        resolve_detector(pointed_at_empty_store)
    assert not _HYDRATED  # a miss must not poison the cache
